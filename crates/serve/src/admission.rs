//! Admission control: load-shedding in front of the shard queues.
//!
//! The bounded queue already rejects with `QUEUE_FULL` when a shard hard
//! fills, but by then every queued job drags p99 latency with it — the
//! queue is sized for burst absorption, not for sustained overload. This
//! layer tracks the total *cost* of admitted-but-unfinished work
//! (estimated cells × a per-kind weight) and starts shedding before the
//! queues fill: low-priority work (training) is turned away at a soft
//! watermark, everything at the hard one. Rejections carry a
//! `retry_after_ms=N` hint (HTTP 429 + `Retry-After`) sized to the
//! current overshoot, so clients back off instead of hammering.
//!
//! Cost is *charged* at acceptance (and for journal-recovered jobs at
//! replay) and *released* when the job reaches a terminal state, always
//! by the same amount the table recorded — the gauge can drift neither up
//! nor down across retries or crashes.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::proto::{JobKind, JobSpec};

/// Admission verdict for one submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Admit; charge the returned cost.
    Admit,
    /// Shed: reject with `SHED` and this retry hint.
    Shed {
        /// How long the client should wait before retrying, in ms.
        retry_after_ms: u64,
    },
}

/// In-flight cost tracker. One per server, shared by the event loop
/// (charge) and the executors (release).
#[derive(Debug)]
pub struct Admission {
    /// Hard watermark: nothing is admitted above it.
    max_cost: u64,
    /// Soft watermark (half of max): low-priority work sheds here.
    soft_cost: u64,
    inflight: AtomicU64,
}

/// Per-kind cost weight: how much executor time a cell of this job kind
/// buys relative to a plain legalization.
pub fn kind_weight(kind: JobKind) -> u64 {
    match kind {
        JobKind::Legalize => 1,
        // A placement runs several diffusion/solve rounds plus a finalist
        // legalization; RL inference adds network forwards per decision.
        JobKind::Gplace | JobKind::RlLegalize => 2,
        // Training loops over many episodes of the same design.
        JobKind::Train => 4,
    }
}

/// Estimated cost of a job: cells × kind weight. Cell count comes from
/// the DEF's own `COMPONENTS <n>` declaration when present (cheap — no
/// parse), else a bytes-based guess; floored at 1 so empty probes still
/// cost something.
pub fn cost_of(spec: &JobSpec) -> u64 {
    let cells = declared_components(&spec.def)
        .unwrap_or((spec.def.len() as u64) / 64)
        .max(1);
    cells.saturating_mul(kind_weight(spec.kind))
}

/// Pulls `n` out of the first `COMPONENTS <n>` line of a DEF without
/// parsing the whole design.
fn declared_components(def: &str) -> Option<u64> {
    for line in def.lines() {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("COMPONENTS ") {
            return rest.split_whitespace().next().and_then(|w| w.parse().ok());
        }
    }
    None
}

/// `true` for job kinds shed first under load.
pub fn low_priority(kind: JobKind) -> bool {
    matches!(kind, JobKind::Train)
}

impl Admission {
    /// A tracker with the given hard watermark (soft = half of it).
    pub fn new(max_cost: u64) -> Self {
        let max_cost = max_cost.max(1);
        Self {
            max_cost,
            soft_cost: max_cost / 2,
            inflight: AtomicU64::new(0),
        }
    }

    /// Decides whether a job of `cost` may enter. On [`Verdict::Admit`]
    /// the cost has already been charged; the caller must
    /// [`release`](Self::release) it when the job reaches a terminal
    /// state (or if acceptance fails after this point).
    pub fn admit(&self, cost: u64, low_priority: bool) -> Verdict {
        // Optimistically charge, then check; back out on shed. The
        // watermark race this leaves (two submissions both landing just
        // under the line) errs by at most one job, which the bounded
        // queue behind us absorbs.
        let after = self.inflight.fetch_add(cost, Ordering::AcqRel) + cost;
        let limit = if low_priority {
            self.soft_cost
        } else {
            self.max_cost
        };
        if after > limit {
            self.inflight.fetch_sub(cost, Ordering::AcqRel);
            if !telemetry::disabled() {
                telemetry::counter("serve.admission.shed").inc();
            }
            Verdict::Shed {
                retry_after_ms: self.retry_after_ms(after, limit),
            }
        } else {
            Verdict::Admit
        }
    }

    /// Charges cost without an admission decision (journal-recovered
    /// jobs were already acknowledged — shedding them now would break
    /// the durability promise).
    pub fn charge(&self, cost: u64) {
        self.inflight.fetch_add(cost, Ordering::AcqRel);
    }

    /// Releases the cost of a job that reached a terminal state.
    pub fn release(&self, cost: u64) {
        // Saturating: a double-release bug should pin the gauge at zero,
        // not wrap it to u64::MAX and shed everything forever.
        let mut cur = self.inflight.load(Ordering::Acquire);
        loop {
            let next = cur.saturating_sub(cost);
            match self.inflight.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current in-flight cost (telemetry gauge).
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Acquire)
    }

    /// Retry hint scaled to the overshoot: the further past the
    /// watermark, the longer the suggested wait, capped at 2s.
    fn retry_after_ms(&self, after: u64, limit: u64) -> u64 {
        let overshoot = after.saturating_sub(limit);
        // 25ms base + 1ms per 1/1000th of the limit overshot.
        let scaled = 25 + overshoot.saturating_mul(1000) / limit.max(1);
        scaled.min(2000)
    }
}

/// Parses the `retry_after_ms=N` hint out of a SHED rejection reason.
/// Shared by the HTTP adapter (to emit `Retry-After`) and the client
/// backoff (to honor it).
pub fn retry_after_hint(reason: &str) -> Option<u64> {
    reason.split_whitespace().find_map(|w| {
        w.strip_prefix("retry_after_ms=")
            .and_then(|v| v.parse().ok())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: JobKind, def: &str) -> JobSpec {
        JobSpec {
            kind,
            def: def.into(),
            ..JobSpec::default()
        }
    }

    #[test]
    fn cost_uses_declared_components_and_kind_weight() {
        let def = "DESIGN d ;\nCOMPONENTS 100 ;\nEND COMPONENTS\nEND DESIGN\n";
        assert_eq!(cost_of(&spec(JobKind::Legalize, def)), 100);
        assert_eq!(cost_of(&spec(JobKind::Gplace, def)), 200);
        assert_eq!(cost_of(&spec(JobKind::Train, def)), 400);
        // No COMPONENTS line: bytes-based guess, floored at 1.
        assert_eq!(cost_of(&spec(JobKind::Legalize, "x")), 1);
    }

    #[test]
    fn low_priority_sheds_at_the_soft_watermark() {
        let a = Admission::new(100);
        // 60 > soft (50) but under max: trains shed, legalize admits.
        match a.admit(60, true) {
            Verdict::Shed { retry_after_ms } => assert!(retry_after_ms >= 25),
            v => panic!("train should shed at soft watermark, got {v:?}"),
        }
        assert_eq!(a.inflight(), 0, "shed must not leave cost charged");
        assert_eq!(a.admit(60, false), Verdict::Admit);
        assert_eq!(a.inflight(), 60);
        // Past the hard watermark everything sheds.
        assert!(matches!(a.admit(60, false), Verdict::Shed { .. }));
        a.release(60);
        assert_eq!(a.inflight(), 0);
    }

    #[test]
    fn release_saturates_at_zero() {
        let a = Admission::new(100);
        a.charge(10);
        a.release(50);
        assert_eq!(a.inflight(), 0);
    }

    #[test]
    fn retry_hint_round_trips_through_the_reason_string() {
        let a = Admission::new(100);
        let Verdict::Shed { retry_after_ms } = a.admit(1000, false) else {
            panic!("must shed");
        };
        let reason = format!("overloaded retry_after_ms={retry_after_ms}");
        assert_eq!(retry_after_hint(&reason), Some(retry_after_ms));
        assert_eq!(retry_after_hint("queue full"), None);
    }

    #[test]
    fn retry_hint_grows_with_overshoot_and_caps() {
        let a = Admission::new(1000);
        let small = match a.admit(1100, false) {
            Verdict::Shed { retry_after_ms } => retry_after_ms,
            v => panic!("{v:?}"),
        };
        let big = match a.admit(1_000_000, false) {
            Verdict::Shed { retry_after_ms } => retry_after_ms,
            v => panic!("{v:?}"),
        };
        assert!(small < big);
        assert_eq!(big, 2000, "hint is capped");
    }
}
