//! Legalization as a service: an async job server over the RL-legalizer.
//!
//! `rlleg-serve` accepts DEF/LEF payloads over a CRC-framed,
//! length-prefixed binary protocol (plus a minimal HTTP/1.1 adapter on the
//! same port) and runs them as jobs on a fixed executor set — concurrent
//! sessions never spawn per-request threads; inner compute shares the
//! process-global [`rlleg_legalize::pool`] worker pool. The whole stack is
//! built from the standard library: readiness comes from `poll(2)`
//! declared directly ([`poll`]), so the workspace's zero-new-dependency
//! rule holds.
//!
//! Pieces:
//!
//! - [`proto`] — the wire format: 13-byte header (magic, type, length,
//!   CRC-32), strict decoding, incremental [`proto::FrameReader`],
//! - [`poll`] — readiness multiplexing for the single event-loop thread,
//! - [`queue`] — the sharded bounded job queue; a full shard answers
//!   REJECTED (HTTP 429) instead of buffering unboundedly,
//! - [`job`] — the job table: states, progress streams (telemetry-journal
//!   JSONL), terminal outcomes,
//! - [`wal`] — the write-ahead job journal: every acknowledgment is
//!   fsynced before it is sent, so a SIGKILL'd server restarted on the
//!   same data directory re-runs interrupted jobs and serves persisted
//!   results bit-identically,
//! - [`admission`] — cost-based load shedding (cells × job-kind weight)
//!   with machine-readable `retry_after_ms` hints; refusing work is
//!   allowed, losing accepted work is not,
//! - [`exec`] — the executor threads; every job runs under
//!   `catch_unwind`, chaos kills fail the job and never the server, with
//!   per-job deadlines and journalled bounded retries,
//! - [`server`] — the event loop, WAL replay on startup, graceful drain
//!   (undelivered results are persisted through
//!   [`rlleg_design::fsio::write_atomic`]), slow-loris sweep, and the
//!   HTTP routes,
//! - [`client`] — a blocking client for tests and tooling, with jittered
//!   exponential [`client::Backoff`] that honors server retry hints,
//! - [`loadgen`] — the three-phase load harness behind `BENCH_serve.json`
//!   (closed loop, overload shedding, SIGKILL/restart recovery audit).
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use rlleg_serve::client::Client;
//! use rlleg_serve::proto::JobSpec;
//! use rlleg_serve::server::{ServeConfig, Server};
//!
//! let handle = Server::start(ServeConfig {
//!     data_dir: std::env::temp_dir().join("rlleg-serve-doc"),
//!     ..ServeConfig::default()
//! })
//! .expect("start");
//! let mut client = Client::connect(handle.addr(), Duration::from_secs(5)).expect("connect");
//! client.ping(Duration::from_secs(5)).expect("pong");
//! let spec = JobSpec {
//!     def: rlleg_design::def::write_def(&rlleg_benchgen::generate(
//!         &rlleg_benchgen::find_spec("fft_2_md2").expect("table row").scaled(0.002),
//!     )),
//!     ..JobSpec::default()
//! };
//! let result = client.run(&spec, Duration::from_secs(60)).expect("job");
//! assert!(result.ok);
//! handle.shutdown_graceful();
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod conn;
pub mod exec;
pub mod http;
pub mod job;
pub mod loadgen;
pub mod poll;
pub mod proto;
pub mod queue;
pub mod server;
pub mod wal;

pub use client::{Client, JobResult};
pub use proto::{Frame, JobKind, JobSpec};
pub use server::{ServeConfig, Server, ServerHandle};
