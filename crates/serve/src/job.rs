//! Job lifecycle state shared between the event loop and the executors.
//!
//! Every accepted submission becomes a [`JobEntry`] in the [`JobTable`].
//! Executors move entries `Queued → Running → Done/Failed` and append
//! progress events; the event loop reads new progress lines (per-connection
//! cursors live with the connection) and delivers terminal results.
//! Progress events reuse the telemetry journal's [`Event`] record and JSONL
//! rendering, and are forwarded to the process-global journal as well when
//! one is installed — a `tail -f` on the server's journal file sees the
//! same stream a subscribed client does.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant, SystemTime};

use telemetry::journal::Event;

use crate::proto::JobSpec;

/// Job identifier, unique per server run.
pub type JobId = u64;

/// Wire-visible job states (payload of a STATUS frame).
pub mod state {
    /// Accepted, waiting in its queue shard.
    pub const QUEUED: u8 = 0;
    /// An executor is working on it.
    pub const RUNNING: u8 = 1;
    /// Finished; the result is available.
    pub const DONE: u8 = 2;
    /// Terminated with an error (including an executor panic).
    pub const FAILED: u8 = 3;
    /// Cancelled before an executor picked it up.
    pub const CANCELLED: u8 = 4;
    /// The id names no known job.
    pub const UNKNOWN: u8 = 255;
}

/// Cap on buffered progress lines per job; beyond it lines are shed and
/// counted, mirroring the journal's backpressure-by-shedding contract.
const PROGRESS_CAP: usize = 256;

/// Current wall clock as Unix milliseconds — the time base for
/// journalled acceptance stamps and [`crate::proto::JobSpec::deadline_ms`]
/// deadlines (both must survive restarts, so `Instant` cannot carry them).
pub fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// What an executor receives when it claims a job.
#[derive(Debug)]
pub struct Claimed {
    /// The submitted specification, moved out of the table.
    pub spec: JobSpec,
    /// This execution attempt, counting from 1.
    pub attempt: u32,
    /// Acceptance stamp (Unix ms) the deadline is measured from.
    pub accepted_unix_ms: u64,
}

/// Terminal output of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// `true` when the job completed with a fully legal / converged
    /// result.
    pub ok: bool,
    /// Result DEF text (empty for training jobs and failures).
    pub def: String,
    /// JSON stats object (see `exec::JobStats`).
    pub stats: String,
}

/// One job's full lifecycle record.
///
/// Memory discipline: the heavy parts of [`JobSpec`] (DEF/LEF text) are
/// moved out by [`JobTable::claim`] when the job starts running, dropped
/// on [`JobTable::cancel`], and the whole entry is evicted by
/// [`JobTable::reap_terminal`] once its result was delivered — so the
/// table's footprint is bounded by in-flight work plus a capped window of
/// delivered results, not by the server's lifetime job count.
#[derive(Debug)]
pub struct JobEntry {
    /// The submitted specification (payloads emptied once RUNNING).
    pub spec: JobSpec,
    /// Current state code (see [`state`]).
    pub state: u8,
    /// Buffered progress lines (JSONL), capped at [`PROGRESS_CAP`].
    pub progress: Vec<String>,
    /// Progress lines shed past the cap.
    pub progress_dropped: u64,
    /// Terminal outcome, set exactly once.
    pub outcome: Option<JobOutcome>,
    /// Error text for FAILED jobs.
    pub error: Option<String>,
    /// `true` once some connection received the terminal RESULT frame.
    pub delivered: bool,
    /// Submission time (for queue-latency accounting).
    pub submitted: Instant,
    /// Time the job reached a terminal state (for eviction TTLs).
    pub finished: Option<Instant>,
    /// Acceptance wall clock (Unix ms); deadlines measure from here.
    pub accepted_unix_ms: u64,
    /// Execution attempts started (0 until first claim).
    pub attempt: u32,
    /// Admission-control cost charged for this job (released when it
    /// reaches a terminal state).
    pub cost: u64,
    /// When set, the job is queued *logically* but not in a shard — it is
    /// backing off after a transient failure; the sweep re-enqueues it
    /// once this instant passes.
    pub retry_at: Option<Instant>,
}

/// Shared registry of every job the server has accepted.
#[derive(Debug, Default)]
pub struct JobTable {
    jobs: Mutex<HashMap<JobId, JobEntry>>,
    next_id: AtomicU64,
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl JobTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new queued job and returns its id.
    pub fn insert(&self, spec: JobSpec) -> JobId {
        self.insert_with(spec, 0, unix_ms_now())
    }

    /// [`insert`](Self::insert) with an explicit admission cost and
    /// acceptance stamp (what the server journals).
    pub fn insert_with(&self, spec: JobSpec, cost: u64, accepted_unix_ms: u64) -> JobId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = JobEntry {
            spec,
            state: state::QUEUED,
            progress: Vec::new(),
            progress_dropped: 0,
            outcome: None,
            error: None,
            delivered: false,
            submitted: Instant::now(),
            finished: None,
            accepted_unix_ms,
            attempt: 0,
            cost,
            retry_at: None,
        };
        relock(&self.jobs).insert(id, entry);
        id
    }

    /// Re-registers a journal-recovered job under its *original* id, so
    /// clients polling an id they were given before the crash still find
    /// it. The id counter is bumped past it; terminal recoveries carry
    /// their outcome/error and count as undelivered (a late `GET
    /// /jobs/<id>` serves them).
    #[allow(clippy::too_many_arguments)]
    pub fn insert_recovered(
        &self,
        id: JobId,
        spec: JobSpec,
        job_state: u8,
        outcome: Option<JobOutcome>,
        error: Option<String>,
        attempt: u32,
        accepted_unix_ms: u64,
        cost: u64,
    ) {
        self.next_id.fetch_max(id, Ordering::Relaxed);
        let terminal = matches!(job_state, state::DONE | state::FAILED | state::CANCELLED);
        let entry = JobEntry {
            spec,
            state: job_state,
            progress: Vec::new(),
            progress_dropped: 0,
            outcome,
            error,
            delivered: false,
            submitted: Instant::now(),
            finished: terminal.then(Instant::now),
            accepted_unix_ms,
            attempt,
            cost,
            retry_at: None,
        };
        relock(&self.jobs).insert(id, entry);
    }

    /// Runs `f` on the entry for `id` (no-op returning `None` when the id
    /// is unknown).
    pub fn with<R>(&self, id: JobId, f: impl FnOnce(&mut JobEntry) -> R) -> Option<R> {
        relock(&self.jobs).get_mut(&id).map(f)
    }

    /// Current state code, [`state::UNKNOWN`] for unknown ids.
    pub fn state_of(&self, id: JobId) -> u8 {
        self.with(id, |e| e.state).unwrap_or(state::UNKNOWN)
    }

    /// Number of jobs currently in the RUNNING state.
    pub fn running(&self) -> usize {
        relock(&self.jobs)
            .values()
            .filter(|e| e.state == state::RUNNING)
            .count()
    }

    /// Marks `id` running if it is still queued, moving the submitted spec
    /// out to the claiming executor (the table keeps only the lightweight
    /// shell, so the DEF/LEF text lives exactly once, with the job that
    /// needs it). Increments the attempt counter. Returns `None` when the
    /// job was cancelled in the meantime (the executor skips it) or is
    /// parked for a retry backoff the sweep has not released yet.
    pub fn claim(&self, id: JobId) -> Option<Claimed> {
        self.with(id, |e| {
            if e.state == state::QUEUED && e.retry_at.is_none() {
                e.state = state::RUNNING;
                e.attempt += 1;
                Some(Claimed {
                    spec: std::mem::take(&mut e.spec),
                    attempt: e.attempt,
                    accepted_unix_ms: e.accepted_unix_ms,
                })
            } else {
                None
            }
        })
        .flatten()
    }

    /// Puts a transiently-failed job back to QUEUED with its spec
    /// restored and a backoff stamp; the sweep re-enqueues it once
    /// `retry_at` passes. Returns `false` when the job is no longer
    /// RUNNING (e.g. the table was torn down around it).
    pub fn requeue(&self, id: JobId, spec: JobSpec, retry_at: Instant) -> bool {
        self.with(id, |e| {
            if e.state == state::RUNNING {
                e.state = state::QUEUED;
                e.spec = spec;
                e.retry_at = Some(retry_at);
                true
            } else {
                false
            }
        })
        .unwrap_or(false)
    }

    /// Re-arms the backoff stamp of a queued job (used when the shard
    /// queue is full at re-enqueue time).
    pub fn schedule_retry(&self, id: JobId, at: Instant) {
        self.with(id, |e| {
            if e.state == state::QUEUED {
                e.retry_at = Some(at);
            }
        });
    }

    /// Ids whose backoff expired: clears their stamps and returns them
    /// for the sweep to push into the shard queue.
    pub fn take_due_retries(&self, now: Instant) -> Vec<JobId> {
        let mut jobs = relock(&self.jobs);
        let mut due = Vec::new();
        for (&id, e) in jobs.iter_mut() {
            if e.state == state::QUEUED && e.retry_at.is_some_and(|at| at <= now) {
                e.retry_at = None;
                due.push(id);
            }
        }
        due
    }

    /// Ids currently parked on a backoff stamp (failed at drain time
    /// instead of being left to dangle).
    pub fn pending_retries(&self) -> Vec<JobId> {
        relock(&self.jobs)
            .iter()
            .filter(|(_, e)| e.state == state::QUEUED && e.retry_at.is_some())
            .map(|(&id, _)| id)
            .collect()
    }

    /// The admission cost charged for `id` (0 for unknown ids).
    pub fn cost_of(&self, id: JobId) -> u64 {
        self.with(id, |e| e.cost).unwrap_or(0)
    }

    /// Cancels a queued job; running/terminal jobs are left alone. The
    /// STATUS acknowledgement the caller sends *is* the delivery, so the
    /// entry is immediately eligible for [`reap_terminal`](Self::reap_terminal)
    /// and its payloads are dropped here.
    pub fn cancel(&self, id: JobId) -> bool {
        self.with(id, |e| {
            if e.state == state::QUEUED {
                e.state = state::CANCELLED;
                e.spec = JobSpec::default();
                e.delivered = true;
                e.finished = Some(Instant::now());
                true
            } else {
                false
            }
        })
        .unwrap_or(false)
    }

    /// Removes an entry outright (submission that never entered the
    /// queue — the id was never handed to a client).
    pub fn remove(&self, id: JobId) {
        relock(&self.jobs).remove(&id);
    }

    /// Appends a progress event to the job's stream (shedding past the
    /// cap) and mirrors it to the process-global telemetry journal.
    pub fn progress(&self, id: JobId, event: Event) {
        let line = event.to_json_line();
        telemetry::emit(event);
        self.with(id, |e| {
            if e.progress.len() < PROGRESS_CAP {
                e.progress.push(line);
            } else {
                e.progress_dropped += 1;
            }
        });
    }

    /// Records the terminal outcome of a job.
    pub fn finish(&self, id: JobId, outcome: JobOutcome) {
        self.with(id, |e| {
            e.state = state::DONE;
            e.outcome = Some(outcome);
            e.finished = Some(Instant::now());
        });
    }

    /// Records a failure (error text instead of a result).
    pub fn fail(&self, id: JobId, error: String) {
        self.with(id, |e| {
            e.state = state::FAILED;
            e.error = Some(error);
            e.finished = Some(Instant::now());
        });
    }

    /// Evicts delivered terminal entries, bounding the table: everything
    /// older than `ttl` goes, and at most `cap` delivered terminal entries
    /// are kept (oldest evicted first). Undelivered results are exempt —
    /// they are drained to disk on shutdown, never silently dropped.
    /// Returns the number of entries evicted.
    pub fn reap_terminal(&self, now: Instant, ttl: Duration, cap: usize) -> usize {
        let mut jobs = relock(&self.jobs);
        let mut reapable: Vec<(JobId, Instant)> = jobs
            .iter()
            .filter(|(_, e)| {
                e.delivered && matches!(e.state, state::DONE | state::FAILED | state::CANCELLED)
            })
            .map(|(&id, e)| (id, e.finished.unwrap_or(e.submitted)))
            .collect();
        // Oldest first, so the cap keeps the most recent results around
        // for late re-queries.
        reapable.sort_by_key(|&(_, at)| at);
        let over_cap = reapable.len().saturating_sub(cap);
        let mut evicted = 0;
        for (i, (id, at)) in reapable.iter().enumerate() {
            if i < over_cap || now.saturating_duration_since(*at) >= ttl {
                jobs.remove(id);
                evicted += 1;
            }
        }
        evicted
    }

    /// Ids of every terminal job whose result was never delivered to a
    /// subscriber (drained to disk on graceful shutdown).
    pub fn undelivered_terminal(&self) -> Vec<JobId> {
        relock(&self.jobs)
            .iter()
            .filter(|(_, e)| !e.delivered && matches!(e.state, state::DONE | state::FAILED))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Snapshot of (queued, running, terminal) counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let jobs = relock(&self.jobs);
        let mut c = (0, 0, 0);
        for e in jobs.values() {
            match e.state {
                state::QUEUED => c.0 += 1,
                state::RUNNING => c.1 += 1,
                _ => c.2 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_queued_running_done() {
        let t = JobTable::new();
        let id = t.insert(JobSpec::default());
        assert_eq!(t.state_of(id), state::QUEUED);
        assert!(t.claim(id).is_some());
        assert_eq!(t.state_of(id), state::RUNNING);
        assert!(t.claim(id).is_none(), "claiming twice must fail");
        t.finish(
            id,
            JobOutcome {
                ok: true,
                def: "DEF".into(),
                stats: "{}".into(),
            },
        );
        assert_eq!(t.state_of(id), state::DONE);
        assert_eq!(t.undelivered_terminal(), vec![id]);
        t.with(id, |e| e.delivered = true);
        assert!(t.undelivered_terminal().is_empty());
    }

    #[test]
    fn cancel_only_affects_queued_jobs() {
        let t = JobTable::new();
        let id = t.insert(JobSpec::default());
        assert!(t.cancel(id));
        assert_eq!(t.state_of(id), state::CANCELLED);
        assert!(t.claim(id).is_none(), "cancelled job must not start");
        let id2 = t.insert(JobSpec::default());
        assert!(t.claim(id2).is_some());
        assert!(!t.cancel(id2), "running job is not cancellable");
    }

    #[test]
    fn claim_moves_the_spec_out_of_the_table() {
        let t = JobTable::new();
        let id = t.insert(JobSpec {
            def: "DESIGN big payload".into(),
            ..JobSpec::default()
        });
        let claimed = t.claim(id).expect("claim");
        assert_eq!(claimed.spec.def, "DESIGN big payload");
        assert_eq!(claimed.attempt, 1);
        t.with(id, |e| {
            assert!(
                e.spec.def.is_empty(),
                "DEF text must not be retained once RUNNING"
            );
        });
    }

    #[test]
    fn reap_evicts_delivered_terminal_entries_by_ttl_and_cap() {
        let t = JobTable::new();
        let ttl = Duration::from_secs(60);
        // Three delivered terminal jobs, one undelivered, one running.
        let delivered: Vec<JobId> = (0..3)
            .map(|_| {
                let id = t.insert(JobSpec::default());
                t.claim(id);
                t.finish(
                    id,
                    JobOutcome {
                        ok: true,
                        def: String::new(),
                        stats: "{}".into(),
                    },
                );
                t.with(id, |e| e.delivered = true);
                id
            })
            .collect();
        let undelivered = t.insert(JobSpec::default());
        t.claim(undelivered);
        t.fail(undelivered, "boom".into());
        let running = t.insert(JobSpec::default());
        t.claim(running);

        // Within TTL and under cap: nothing to do.
        assert_eq!(t.reap_terminal(Instant::now(), ttl, 8), 0);
        // Cap of 1 evicts the two oldest delivered entries.
        assert_eq!(t.reap_terminal(Instant::now(), ttl, 1), 2);
        assert_eq!(t.state_of(delivered[0]), state::UNKNOWN);
        assert_eq!(t.state_of(delivered[1]), state::UNKNOWN);
        assert_eq!(t.state_of(delivered[2]), state::DONE);
        // TTL expiry evicts the last delivered one; the undelivered
        // failure and the running job survive.
        assert_eq!(t.reap_terminal(Instant::now() + ttl, ttl, 8), 1);
        assert_eq!(t.state_of(delivered[2]), state::UNKNOWN);
        assert_eq!(t.state_of(undelivered), state::FAILED);
        assert_eq!(t.state_of(running), state::RUNNING);
    }

    #[test]
    fn cancel_drops_payload_and_marks_delivered() {
        let t = JobTable::new();
        let id = t.insert(JobSpec {
            def: "DESIGN payload".into(),
            ..JobSpec::default()
        });
        assert!(t.cancel(id));
        t.with(id, |e| {
            assert!(e.spec.def.is_empty());
            assert!(e.delivered);
        });
        // An immediately-reapable entry: the cancel ACK was the delivery.
        assert_eq!(t.reap_terminal(Instant::now(), Duration::ZERO, 0), 1);
    }

    #[test]
    fn remove_discards_a_never_queued_entry() {
        let t = JobTable::new();
        let id = t.insert(JobSpec::default());
        t.remove(id);
        assert_eq!(t.state_of(id), state::UNKNOWN);
    }

    #[test]
    fn progress_sheds_past_the_cap() {
        let t = JobTable::new();
        let id = t.insert(JobSpec::default());
        for i in 0..(PROGRESS_CAP + 10) {
            t.progress(id, Event::new("tick").with("i", i as u64));
        }
        t.with(id, |e| {
            assert_eq!(e.progress.len(), PROGRESS_CAP);
            assert_eq!(e.progress_dropped, 10);
        });
    }

    #[test]
    fn unknown_ids_answer_unknown() {
        let t = JobTable::new();
        assert_eq!(t.state_of(99), state::UNKNOWN);
        assert!(t.claim(99).is_none());
    }

    #[test]
    fn requeue_parks_the_job_until_the_backoff_expires() {
        let t = JobTable::new();
        let id = t.insert(JobSpec {
            def: "DESIGN d ; END".into(),
            ..JobSpec::default()
        });
        let claimed = t.claim(id).expect("first claim");
        let at = Instant::now() + Duration::from_millis(50);
        assert!(t.requeue(id, claimed.spec, at));
        assert_eq!(t.state_of(id), state::QUEUED);
        assert!(
            t.claim(id).is_none(),
            "parked jobs must not be claimable before the sweep releases them"
        );
        assert!(t.take_due_retries(Instant::now()).is_empty());
        assert_eq!(t.pending_retries(), vec![id]);
        let due = t.take_due_retries(at + Duration::from_millis(1));
        assert_eq!(due, vec![id]);
        assert!(t.pending_retries().is_empty());
        let second = t.claim(id).expect("second claim");
        assert_eq!(second.attempt, 2);
        assert_eq!(second.spec.def, "DESIGN d ; END");
    }

    #[test]
    fn recovered_jobs_keep_their_id_and_bump_the_counter() {
        let t = JobTable::new();
        t.insert_recovered(
            7,
            JobSpec::default(),
            state::QUEUED,
            None,
            None,
            2,
            1234,
            10,
        );
        assert_eq!(t.state_of(7), state::QUEUED);
        assert_eq!(t.cost_of(7), 10);
        let claimed = t.claim(7).expect("claim recovered");
        assert_eq!(claimed.attempt, 3);
        assert_eq!(claimed.accepted_unix_ms, 1234);
        let fresh = t.insert(JobSpec::default());
        assert!(fresh > 7, "id counter must move past recovered ids");
        // A recovered terminal result is undelivered until someone asks.
        t.insert_recovered(
            3,
            JobSpec::default(),
            state::DONE,
            Some(JobOutcome {
                ok: true,
                def: "DEF".into(),
                stats: "{}".into(),
            }),
            None,
            1,
            99,
            0,
        );
        assert!(t.undelivered_terminal().contains(&3));
    }
}
