//! Job lifecycle state shared between the event loop and the executors.
//!
//! Every accepted submission becomes a [`JobEntry`] in the [`JobTable`].
//! Executors move entries `Queued → Running → Done/Failed` and append
//! progress events; the event loop reads new progress lines (per-connection
//! cursors live with the connection) and delivers terminal results.
//! Progress events reuse the telemetry journal's [`Event`] record and JSONL
//! rendering, and are forwarded to the process-global journal as well when
//! one is installed — a `tail -f` on the server's journal file sees the
//! same stream a subscribed client does.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use telemetry::journal::Event;

use crate::proto::JobSpec;

/// Job identifier, unique per server run.
pub type JobId = u64;

/// Wire-visible job states (payload of a STATUS frame).
pub mod state {
    /// Accepted, waiting in its queue shard.
    pub const QUEUED: u8 = 0;
    /// An executor is working on it.
    pub const RUNNING: u8 = 1;
    /// Finished; the result is available.
    pub const DONE: u8 = 2;
    /// Terminated with an error (including an executor panic).
    pub const FAILED: u8 = 3;
    /// Cancelled before an executor picked it up.
    pub const CANCELLED: u8 = 4;
    /// The id names no known job.
    pub const UNKNOWN: u8 = 255;
}

/// Cap on buffered progress lines per job; beyond it lines are shed and
/// counted, mirroring the journal's backpressure-by-shedding contract.
const PROGRESS_CAP: usize = 256;

/// Terminal output of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// `true` when the job completed with a fully legal / converged
    /// result.
    pub ok: bool,
    /// Result DEF text (empty for training jobs and failures).
    pub def: String,
    /// JSON stats object (see `exec::JobStats`).
    pub stats: String,
}

/// One job's full lifecycle record.
#[derive(Debug)]
pub struct JobEntry {
    /// The submitted specification.
    pub spec: JobSpec,
    /// Current state code (see [`state`]).
    pub state: u8,
    /// Buffered progress lines (JSONL), capped at [`PROGRESS_CAP`].
    pub progress: Vec<String>,
    /// Progress lines shed past the cap.
    pub progress_dropped: u64,
    /// Terminal outcome, set exactly once.
    pub outcome: Option<JobOutcome>,
    /// Error text for FAILED jobs.
    pub error: Option<String>,
    /// `true` once some connection received the terminal RESULT frame.
    pub delivered: bool,
    /// Submission time (for queue-latency accounting).
    pub submitted: Instant,
}

/// Shared registry of every job the server has accepted.
#[derive(Debug, Default)]
pub struct JobTable {
    jobs: Mutex<HashMap<JobId, JobEntry>>,
    next_id: AtomicU64,
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl JobTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new queued job and returns its id.
    pub fn insert(&self, spec: JobSpec) -> JobId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = JobEntry {
            spec,
            state: state::QUEUED,
            progress: Vec::new(),
            progress_dropped: 0,
            outcome: None,
            error: None,
            delivered: false,
            submitted: Instant::now(),
        };
        relock(&self.jobs).insert(id, entry);
        id
    }

    /// Runs `f` on the entry for `id` (no-op returning `None` when the id
    /// is unknown).
    pub fn with<R>(&self, id: JobId, f: impl FnOnce(&mut JobEntry) -> R) -> Option<R> {
        relock(&self.jobs).get_mut(&id).map(f)
    }

    /// Current state code, [`state::UNKNOWN`] for unknown ids.
    pub fn state_of(&self, id: JobId) -> u8 {
        self.with(id, |e| e.state).unwrap_or(state::UNKNOWN)
    }

    /// Number of jobs currently in the RUNNING state.
    pub fn running(&self) -> usize {
        relock(&self.jobs)
            .values()
            .filter(|e| e.state == state::RUNNING)
            .count()
    }

    /// Marks `id` running if it is still queued; returns `false` when the
    /// job was cancelled in the meantime (the executor skips it).
    pub fn claim(&self, id: JobId) -> bool {
        self.with(id, |e| {
            if e.state == state::QUEUED {
                e.state = state::RUNNING;
                true
            } else {
                false
            }
        })
        .unwrap_or(false)
    }

    /// Cancels a queued job; running/terminal jobs are left alone.
    pub fn cancel(&self, id: JobId) -> bool {
        self.with(id, |e| {
            if e.state == state::QUEUED {
                e.state = state::CANCELLED;
                true
            } else {
                false
            }
        })
        .unwrap_or(false)
    }

    /// Appends a progress event to the job's stream (shedding past the
    /// cap) and mirrors it to the process-global telemetry journal.
    pub fn progress(&self, id: JobId, event: Event) {
        let line = event.to_json_line();
        telemetry::emit(event);
        self.with(id, |e| {
            if e.progress.len() < PROGRESS_CAP {
                e.progress.push(line);
            } else {
                e.progress_dropped += 1;
            }
        });
    }

    /// Records the terminal outcome of a job.
    pub fn finish(&self, id: JobId, outcome: JobOutcome) {
        self.with(id, |e| {
            e.state = state::DONE;
            e.outcome = Some(outcome);
        });
    }

    /// Records a failure (error text instead of a result).
    pub fn fail(&self, id: JobId, error: String) {
        self.with(id, |e| {
            e.state = state::FAILED;
            e.error = Some(error);
        });
    }

    /// Ids of every terminal job whose result was never delivered to a
    /// subscriber (drained to disk on graceful shutdown).
    pub fn undelivered_terminal(&self) -> Vec<JobId> {
        relock(&self.jobs)
            .iter()
            .filter(|(_, e)| !e.delivered && matches!(e.state, state::DONE | state::FAILED))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Snapshot of (queued, running, terminal) counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let jobs = relock(&self.jobs);
        let mut c = (0, 0, 0);
        for e in jobs.values() {
            match e.state {
                state::QUEUED => c.0 += 1,
                state::RUNNING => c.1 += 1,
                _ => c.2 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_queued_running_done() {
        let t = JobTable::new();
        let id = t.insert(JobSpec::default());
        assert_eq!(t.state_of(id), state::QUEUED);
        assert!(t.claim(id));
        assert_eq!(t.state_of(id), state::RUNNING);
        assert!(!t.claim(id), "claiming twice must fail");
        t.finish(
            id,
            JobOutcome {
                ok: true,
                def: "DEF".into(),
                stats: "{}".into(),
            },
        );
        assert_eq!(t.state_of(id), state::DONE);
        assert_eq!(t.undelivered_terminal(), vec![id]);
        t.with(id, |e| e.delivered = true);
        assert!(t.undelivered_terminal().is_empty());
    }

    #[test]
    fn cancel_only_affects_queued_jobs() {
        let t = JobTable::new();
        let id = t.insert(JobSpec::default());
        assert!(t.cancel(id));
        assert_eq!(t.state_of(id), state::CANCELLED);
        assert!(!t.claim(id), "cancelled job must not start");
        let id2 = t.insert(JobSpec::default());
        assert!(t.claim(id2));
        assert!(!t.cancel(id2), "running job is not cancellable");
    }

    #[test]
    fn progress_sheds_past_the_cap() {
        let t = JobTable::new();
        let id = t.insert(JobSpec::default());
        for i in 0..(PROGRESS_CAP + 10) {
            t.progress(id, Event::new("tick").with("i", i as u64));
        }
        t.with(id, |e| {
            assert_eq!(e.progress.len(), PROGRESS_CAP);
            assert_eq!(e.progress_dropped, 10);
        });
    }

    #[test]
    fn unknown_ids_answer_unknown() {
        let t = JobTable::new();
        assert_eq!(t.state_of(99), state::UNKNOWN);
        assert!(!t.claim(99));
    }
}
