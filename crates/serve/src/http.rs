//! Minimal HTTP/1.1 adapter over the same job substrate.
//!
//! Just enough HTTP for curl and load balancer health checks — request
//! line, headers, `Content-Length` body, one response, close. Routes:
//!
//! - `GET /healthz` — liveness (`200`, JSON).
//! - `GET /metrics` — the telemetry registry snapshot as JSON.
//! - `POST /jobs` — submit a legalization job; the body is the DEF text,
//!   query parameters tune it (`?ordering=size|x|random&seed=N&threads=N`).
//!   Answers `202` with the job id, `429` when the queue shard is full,
//!   `413` when the body exceeds the frame cap.
//! - `GET /jobs/<id>` — job state + stats JSON.
//! - `GET /jobs/<id>/def` — the result DEF of a finished job.
//!
//! Anything fancier (streaming progress, training jobs, budgets) uses the
//! binary protocol; the two share one port — the server sniffs the first
//! bytes for the frame magic.

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (upper-case).
    pub method: String,
    /// Path including the query string.
    pub target: String,
    /// Headers, lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length`-delimited).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of header `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Path without the query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Value of query parameter `key`.
    pub fn query(&self, key: &str) -> Option<&str> {
        let q = self.target.split_once('?')?.1;
        q.split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line / headers — answer 400 and close.
    BadRequest(String),
    /// Declared body exceeds the configured cap — answer 413 and close.
    TooLarge {
        /// Declared `Content-Length`.
        declared: usize,
    },
}

/// `true` when the buffered prefix looks like an HTTP request rather than
/// a binary frame.
pub fn looks_like_http(prefix: &[u8]) -> bool {
    const METHODS: [&[u8]; 6] = [b"GET ", b"POST", b"HEAD", b"PUT ", b"DELE", b"OPTI"];
    METHODS.iter().any(|m| prefix.starts_with(m))
}

/// Incremental request parser: `Ok(None)` until the full head and body are
/// buffered, then the request plus the bytes it consumed.
///
/// # Errors
///
/// [`HttpError`] on malformed input or an oversized declared body.
pub fn try_parse(buf: &[u8], max_body: usize) -> Result<Option<(HttpRequest, usize)>, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        // An attacker can grow the head forever without ever finishing it;
        // cap it like a body.
        if buf.len() > 64 * 1024 {
            return Err(HttpError::BadRequest("request head exceeds 64 KiB".into()));
        }
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("non-UTF-8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "bad request line: {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("unsupported {version}")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((k, v)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("bad header line: {line:?}")));
        };
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length: {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::TooLarge {
            declared: content_length,
        });
    }
    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        HttpRequest {
            method: method.to_ascii_uppercase(),
            target: target.to_string(),
            headers,
            body: buf[body_start..total].to_vec(),
        },
        total,
    )))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Renders a complete `Connection: close` response.
pub fn response(status: u16, content_type: &str, body: &[u8]) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// A JSON error body.
pub fn json_error(status: u16, message: &str) -> Vec<u8> {
    response(
        status,
        "application/json",
        format!("{{\"error\":{:?}}}", message).as_bytes(),
    )
}

/// [`json_error`] plus a `Retry-After: <seconds>` header — the admission
/// layer's shed hint in the standard HTTP vocabulary.
pub fn json_error_retry_after(status: u16, message: &str, retry_after_s: u64) -> Vec<u8> {
    let mut out = json_error(status, message);
    // Splice the header before the blank line; the response builder
    // always emits "\r\n\r\n" exactly once.
    if let Some(pos) = out.windows(4).position(|w| w == b"\r\n\r\n") {
        let header = format!("\r\nretry-after: {retry_after_s}");
        out.splice(pos..pos, header.into_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body_incrementally() {
        let wire = b"POST /jobs?seed=7 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nHELLO extra";
        // Head only: need more.
        assert_eq!(
            try_parse(&wire[..20], 1024).expect("partial head parses clean"),
            None
        );
        let (req, consumed) = try_parse(wire, 1024)
            .expect("well-formed request parses clean")
            .expect("complete");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/jobs");
        assert_eq!(req.query("seed"), Some("7"));
        assert_eq!(req.body, b"HELLO");
        assert_eq!(consumed, wire.len() - " extra".len());
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn oversized_body_is_rejected_from_the_header_alone() {
        let wire = b"POST /jobs HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        assert_eq!(
            try_parse(wire, 1024).unwrap_err(),
            HttpError::TooLarge { declared: 999999 }
        );
    }

    #[test]
    fn garbage_is_bad_request() {
        assert!(matches!(
            try_parse(b"NONSENSE\r\n\r\n", 1024).unwrap_err(),
            HttpError::BadRequest(_)
        ));
    }

    #[test]
    fn sniffer_tells_http_from_frames() {
        assert!(looks_like_http(b"GET /healthz HTTP/1.1"));
        assert!(looks_like_http(b"POST /jobs"));
        assert!(!looks_like_http(&crate::proto::MAGIC));
    }

    #[test]
    fn retry_after_header_is_spliced_in() {
        let r = String::from_utf8(json_error_retry_after(429, "overloaded", 2))
            .expect("ASCII response");
        assert!(r.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(r.contains("\r\nretry-after: 2\r\n"), "got: {r}");
        assert!(r.ends_with("{\"error\":\"overloaded\"}"));
        // The body and its declared length still agree.
        assert!(r.contains(&format!(
            "content-length: {}\r\n",
            "{\"error\":\"overloaded\"}".len()
        )));
    }

    #[test]
    fn response_has_length_and_close() {
        let r = String::from_utf8(response(200, "application/json", b"{}"))
            .expect("response builder emits ASCII");
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.contains("content-length: 2\r\n"));
        assert!(r.contains("connection: close"));
        assert!(r.ends_with("{}"));
    }
}
