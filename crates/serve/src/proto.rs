//! The `rlleg-serve` wire protocol: CRC-framed, length-prefixed messages.
//!
//! Every message is one frame:
//!
//! ```text
//! +-------+------+-------------+-----------+----------------+
//! | magic | type | payload_len | crc32     | payload        |
//! | RLSF  | u8   | u32 LE      | u32 LE    | payload_len B  |
//! +-------+------+-------------+-----------+----------------+
//! ```
//!
//! The CRC (same IEEE CRC-32 as the PR-5 checkpoint codec,
//! [`rl_legalizer::crc32`]) covers the payload only, so a torn or
//! bit-flipped frame is *detected*, never guessed around. `payload_len` is
//! validated against a caller-supplied cap before any allocation: a header
//! declaring a multi-gigabyte payload is rejected as
//! [`ProtoError::Oversized`] without buffering a single payload byte.
//!
//! Decoding is strict: unknown frame types, short payloads, trailing
//! payload bytes, and non-UTF-8 text blocks are all hard errors. The fuzz
//! oracle (`rlleg-fuzz --only proto`) holds the codec to "`Err`, never
//! panic, never hang" under arbitrary mutation.

use rl_legalizer::crc32;

/// Frame magic: "RLSF" (RL-legalizer Serve Frame).
pub const MAGIC: [u8; 4] = *b"RLSF";

/// Fixed frame header: magic (4) + type (1) + payload length (4) + CRC (4).
pub const HEADER_LEN: usize = 13;

/// Default cap on a single frame payload (16 MiB). Servers may configure a
/// smaller cap; the codec never accepts more than this.
pub const MAX_FRAME: usize = 16 << 20;

/// Spec encoding version inside SUBMIT payloads. Version 3 appends
/// `deadline_ms`/`max_retries` after `job_key`; version 1 (without them)
/// still decodes, defaulting both to 0. Version 2 was never shipped and
/// stays a hard error (pinned by `proto_spec_version_skew.hex`).
pub const SPEC_VERSION: u8 = 3;

/// The legacy spec version still accepted on decode.
pub const SPEC_VERSION_V1: u8 = 1;

/// Why a submission was refused (payload of [`Frame::Rejected`]).
pub mod reject {
    /// The job's queue shard is at capacity — retry later (HTTP 429).
    pub const QUEUE_FULL: u16 = 1;
    /// The server is draining for shutdown and accepts no new work.
    pub const DRAINING: u16 = 2;
    /// The request frame or body exceeded the server's size cap.
    pub const OVERSIZED: u16 = 3;
    /// The request was syntactically valid but semantically unusable.
    pub const BAD_REQUEST: u16 = 4;
    /// Admission control shed the job under overload. The reason carries a
    /// `retry_after_ms=N` hint (HTTP 429 + `Retry-After`).
    pub const SHED: u16 = 5;
}

/// What a submitted job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum JobKind {
    /// Deterministic heuristic legalization (parallel per-Gcell solver).
    Legalize = 0,
    /// RL-ordered legalization with a seeded network under an
    /// [`rl_legalizer::InferenceBudget`] watchdog.
    RlLegalize = 1,
    /// A (small) training run, checkpointed through
    /// [`rl_legalizer::CheckpointStore`] and resumable across restarts.
    Train = 2,
    /// Analytical global placement (`rlleg-gplace` warm refinement) of the
    /// submitted DEF, followed by deterministic legalization of the result.
    Gplace = 3,
}

impl JobKind {
    fn from_u8(v: u8) -> Result<Self, ProtoError> {
        match v {
            0 => Ok(JobKind::Legalize),
            1 => Ok(JobKind::RlLegalize),
            2 => Ok(JobKind::Train),
            3 => Ok(JobKind::Gplace),
            other => Err(ProtoError::Malformed(format!("unknown job kind {other}"))),
        }
    }
}

/// Chaos-injection flag bits in [`JobSpec::flags`]; honored only when the
/// server was started with chaos injection enabled (tests and the chaos
/// harness), ignored otherwise.
pub mod flags {
    /// Panic mid-execution (after parsing / after the first checkpointed
    /// episode) — the "kill mid-job" chaos case.
    pub const CHAOS_PANIC: u8 = 0b0000_0001;
}

/// A fully-described job: what to run, on what input, under which budget.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// What to run.
    pub kind: JobKind,
    /// Technology the DEF is parsed under: 0 = ICCAD-2017 contest,
    /// 1 = Nangate45.
    pub tech: u8,
    /// Cell ordering for heuristic runs: 0 = size-descending,
    /// 1 = x-ascending, 2 = seeded random.
    pub ordering: u8,
    /// Inner solver threads for the per-Gcell parallel phase
    /// (0 = the server's configured default). Results are bit-identical
    /// for any value; this only trades latency for throughput.
    pub threads: u8,
    /// Chaos-injection bits (see [`flags`]); zero in production traffic.
    pub flags: u8,
    /// Hidden width of the seeded network for RL / training jobs.
    pub hidden: u16,
    /// Episodes for training jobs.
    pub episodes: u32,
    /// Seed for orderings, network init, and training.
    pub seed: u64,
    /// [`rl_legalizer::InferenceBudget::max_steps`] (0 = unlimited).
    pub max_steps: u64,
    /// [`rl_legalizer::InferenceBudget::max_wall`] in ms (0 = unlimited).
    pub max_wall_ms: u64,
    /// Stable identity for checkpoint resume across restarts
    /// (0 = anonymous, never checkpointed).
    pub job_key: u64,
    /// Wall-clock deadline in ms, measured from acceptance
    /// (0 = none). Past it the job fails with "deadline exceeded"
    /// instead of starting (or its late result is discarded).
    pub deadline_ms: u64,
    /// Transient-failure retries before FAILED surfaces (0 = none).
    pub max_retries: u8,
    /// Optional LEF library text ("" = DEF is self-describing `MH_*`).
    pub lef: String,
    /// The DEF payload to legalize / train on.
    pub def: String,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            kind: JobKind::Legalize,
            tech: 0,
            ordering: 0,
            threads: 0,
            flags: 0,
            hidden: 16,
            episodes: 0,
            seed: 0,
            max_steps: 0,
            max_wall_ms: 0,
            job_key: 0,
            deadline_ms: 0,
            max_retries: 0,
            lef: String::new(),
            def: String::new(),
        }
    }
}

/// One protocol message, client → server or server → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Submit a job (client → server). Answered by `Accepted` or
    /// `Rejected` immediately; `Progress`/`Result` stream later on the
    /// same connection.
    Submit(JobSpec),
    /// Ask for a job's state (any connection).
    Query(u64),
    /// Cancel a queued job.
    Cancel(u64),
    /// Liveness probe.
    Ping,
    /// Ask the server to drain in-flight jobs and exit.
    Shutdown,
    /// The job was queued under this id.
    Accepted {
        /// The assigned job id.
        job: u64,
    },
    /// The job was refused (`code` from [`reject`]); backpressure, not
    /// failure — the client may retry after a backoff.
    Rejected {
        /// Rejection code (see [`reject`]).
        code: u16,
        /// Human-readable explanation.
        reason: String,
    },
    /// A chunk of the job's telemetry-journal progress stream (JSONL).
    Progress {
        /// The job the chunk belongs to.
        job: u64,
        /// Newline-terminated JSONL event lines.
        chunk: String,
    },
    /// Terminal job outcome: the result DEF (empty on failure) plus a JSON
    /// stats object.
    Result {
        /// The finished job.
        job: u64,
        /// `true` for a fully-legal / converged result.
        ok: bool,
        /// Result DEF text (model JSON for training jobs; empty on
        /// failure).
        def: String,
        /// JSON stats object (`exec::JobStats`, or `{"error": ...}`).
        stats: String,
    },
    /// Protocol-level error; the server closes the connection after it.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Answer to `Ping`.
    Pong,
    /// Answer to `Query`: job state code (see `job::state` in this crate).
    Status {
        /// The queried job.
        job: u64,
        /// State code (see `job::state`).
        state: u8,
    },
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Submit(_) => 0x01,
            Frame::Query(_) => 0x02,
            Frame::Cancel(_) => 0x03,
            Frame::Ping => 0x04,
            Frame::Shutdown => 0x05,
            Frame::Accepted { .. } => 0x81,
            Frame::Rejected { .. } => 0x82,
            Frame::Progress { .. } => 0x83,
            Frame::Result { .. } => 0x84,
            Frame::Error { .. } => 0x85,
            Frame::Pong => 0x86,
            Frame::Status { .. } => 0x87,
        }
    }
}

/// Why a byte sequence is not a valid frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// More bytes are needed; `needed` is a lower bound on the total frame
    /// size. The only *recoverable* variant — a streaming reader waits for
    /// more input, every other variant poisons the connection.
    Truncated {
        /// Minimum total bytes the frame requires.
        needed: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The type byte names no known frame.
    UnknownType(u8),
    /// The header declares a payload larger than the cap.
    Oversized {
        /// Declared payload length.
        declared: usize,
        /// The cap it exceeded.
        cap: usize,
    },
    /// The payload does not hash to the header CRC.
    CrcMismatch {
        /// CRC declared in the header.
        expected: u32,
        /// CRC computed over the payload.
        found: u32,
    },
    /// The payload passed the CRC but violates the frame's layout.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated { needed } => write!(f, "truncated frame (need {needed} bytes)"),
            ProtoError::BadMagic => write!(f, "bad frame magic"),
            ProtoError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            ProtoError::Oversized { declared, cap } => {
                write!(f, "frame payload {declared} bytes exceeds cap {cap}")
            }
            ProtoError::CrcMismatch { expected, found } => write!(
                f,
                "frame CRC mismatch: header {expected:#010x}, payload {found:#010x}"
            ),
            ProtoError::Malformed(m) => write!(f, "malformed frame payload: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl ProtoError {
    /// `true` when the error only means "wait for more bytes".
    pub fn is_truncated(&self) -> bool {
        matches!(self, ProtoError::Truncated { .. })
    }
}

// ---------------------------------------------------------------------------
// Payload reader/writer
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(b: &'a [u8]) -> Self {
        Self { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| ProtoError::Malformed("payload shorter than declared field".into()))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// A `u32`-length-prefixed UTF-8 string block.
    fn str_block(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Malformed("string block is not UTF-8".into()))
    }

    /// Fails unless every payload byte was consumed (trailing garbage
    /// would otherwise round-trip differently than it was sent).
    fn done(self) -> Result<(), ProtoError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed(format!(
                "{} trailing payload bytes",
                self.b.len() - self.pos
            )))
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn encode_spec(out: &mut Vec<u8>, s: &JobSpec) {
    out.push(SPEC_VERSION);
    out.push(s.kind as u8);
    out.push(s.tech);
    out.push(s.ordering);
    out.push(s.threads);
    out.push(s.flags);
    out.extend_from_slice(&s.hidden.to_le_bytes());
    out.extend_from_slice(&s.episodes.to_le_bytes());
    out.extend_from_slice(&s.seed.to_le_bytes());
    out.extend_from_slice(&s.max_steps.to_le_bytes());
    out.extend_from_slice(&s.max_wall_ms.to_le_bytes());
    out.extend_from_slice(&s.job_key.to_le_bytes());
    out.extend_from_slice(&s.deadline_ms.to_le_bytes());
    out.push(s.max_retries);
    put_str(out, &s.lef);
    put_str(out, &s.def);
}

fn decode_spec(r: &mut Reader<'_>) -> Result<JobSpec, ProtoError> {
    let ver = r.u8()?;
    if ver != SPEC_VERSION && ver != SPEC_VERSION_V1 {
        return Err(ProtoError::Malformed(format!(
            "job spec version {ver} (this build speaks {SPEC_VERSION} and legacy {SPEC_VERSION_V1})"
        )));
    }
    let kind = JobKind::from_u8(r.u8()?)?;
    let tech = r.u8()?;
    if tech > 1 {
        return Err(ProtoError::Malformed(format!("unknown technology {tech}")));
    }
    let ordering = r.u8()?;
    if ordering > 2 {
        return Err(ProtoError::Malformed(format!(
            "unknown ordering {ordering}"
        )));
    }
    let threads = r.u8()?;
    let flags = r.u8()?;
    let hidden = r.u16()?;
    let episodes = r.u32()?;
    let seed = r.u64()?;
    let max_steps = r.u64()?;
    let max_wall_ms = r.u64()?;
    let job_key = r.u64()?;
    // v3 appends the durability fields here; a v1 spec has neither and
    // decodes with both at their "disabled" defaults.
    let (deadline_ms, max_retries) = if ver >= SPEC_VERSION {
        (r.u64()?, r.u8()?)
    } else {
        (0, 0)
    };
    Ok(JobSpec {
        kind,
        tech,
        ordering,
        threads,
        flags,
        hidden,
        episodes,
        seed,
        max_steps,
        max_wall_ms,
        job_key,
        deadline_ms,
        max_retries,
        lef: r.str_block()?,
        def: r.str_block()?,
    })
}

/// Serializes a [`JobSpec`] standalone (the same layout a SUBMIT payload
/// carries) — the write-ahead journal reuses this codec so a replayed spec
/// is bit-identical to the submitted one.
pub fn encode_spec_bytes(s: &JobSpec) -> Vec<u8> {
    let mut out = Vec::new();
    encode_spec(&mut out, s);
    out
}

/// Decodes a standalone [`JobSpec`] produced by [`encode_spec_bytes`].
///
/// # Errors
///
/// [`ProtoError::Malformed`] on layout violations, exactly like a SUBMIT
/// payload.
pub fn decode_spec_bytes(bytes: &[u8]) -> Result<JobSpec, ProtoError> {
    let mut r = Reader::new(bytes);
    let spec = decode_spec(&mut r)?;
    r.done()?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Serializes one frame.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match frame {
        Frame::Submit(spec) => encode_spec(&mut payload, spec),
        Frame::Query(job) | Frame::Cancel(job) => {
            payload.extend_from_slice(&job.to_le_bytes());
        }
        Frame::Ping | Frame::Shutdown | Frame::Pong => {}
        Frame::Accepted { job } => payload.extend_from_slice(&job.to_le_bytes()),
        Frame::Rejected { code, reason } => {
            payload.extend_from_slice(&code.to_le_bytes());
            put_str(&mut payload, reason);
        }
        Frame::Progress { job, chunk } => {
            payload.extend_from_slice(&job.to_le_bytes());
            put_str(&mut payload, chunk);
        }
        Frame::Result {
            job,
            ok,
            def,
            stats,
        } => {
            payload.extend_from_slice(&job.to_le_bytes());
            payload.push(u8::from(*ok));
            put_str(&mut payload, def);
            put_str(&mut payload, stats);
        }
        Frame::Error { message } => put_str(&mut payload, message),
        Frame::Status { job, state } => {
            payload.extend_from_slice(&job.to_le_bytes());
            payload.push(*state);
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(frame.type_byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parses one frame from the front of `bytes` (payloads capped at `cap`).
/// Returns the frame and the number of bytes it consumed.
///
/// # Errors
///
/// [`ProtoError::Truncated`] when more bytes are needed (recoverable for a
/// streaming reader); every other variant is a protocol violation the
/// caller should answer with [`Frame::Error`] and a close.
pub fn decode_frame(bytes: &[u8], cap: usize) -> Result<(Frame, usize), ProtoError> {
    if bytes.len() < HEADER_LEN {
        return Err(ProtoError::Truncated { needed: HEADER_LEN });
    }
    if bytes[0..4] != MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let ty = bytes[4];
    let declared = u32::from_le_bytes(bytes[5..9].try_into().expect("4")) as usize;
    let cap = cap.min(MAX_FRAME);
    if declared > cap {
        return Err(ProtoError::Oversized { declared, cap });
    }
    let total = HEADER_LEN + declared;
    if bytes.len() < total {
        return Err(ProtoError::Truncated { needed: total });
    }
    let expected = u32::from_le_bytes(bytes[9..13].try_into().expect("4"));
    let payload = &bytes[HEADER_LEN..total];
    let found = crc32(payload);
    if found != expected {
        return Err(ProtoError::CrcMismatch { expected, found });
    }
    let mut r = Reader::new(payload);
    let frame = match ty {
        0x01 => Frame::Submit(decode_spec(&mut r)?),
        0x02 => Frame::Query(r.u64()?),
        0x03 => Frame::Cancel(r.u64()?),
        0x04 => Frame::Ping,
        0x05 => Frame::Shutdown,
        0x81 => Frame::Accepted { job: r.u64()? },
        0x82 => Frame::Rejected {
            code: r.u16()?,
            reason: r.str_block()?,
        },
        0x83 => Frame::Progress {
            job: r.u64()?,
            chunk: r.str_block()?,
        },
        0x84 => Frame::Result {
            job: r.u64()?,
            ok: r.u8()? != 0,
            def: r.str_block()?,
            stats: r.str_block()?,
        },
        0x85 => Frame::Error {
            message: r.str_block()?,
        },
        0x86 => Frame::Pong,
        0x87 => Frame::Status {
            job: r.u64()?,
            state: r.u8()?,
        },
        other => return Err(ProtoError::UnknownType(other)),
    };
    r.done()?;
    Ok((frame, total))
}

/// Incremental frame parser over a growing byte buffer (one per
/// connection). Push raw socket bytes in; pull complete frames out.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    consumed: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily: drop already-consumed frames before growing.
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet parsed into a frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Pops the next complete frame, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Non-truncation [`ProtoError`]s are fatal for the stream: framing is
    /// lost, the connection must be closed.
    pub fn next_frame(&mut self, cap: usize) -> Result<Option<Frame>, ProtoError> {
        if self.pending() == 0 {
            return Ok(None);
        }
        match decode_frame(&self.buf[self.consumed..], cap) {
            Ok((frame, n)) => {
                self.consumed += n;
                Ok(Some(frame))
            }
            Err(e) if e.is_truncated() => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        JobSpec {
            kind: JobKind::RlLegalize,
            tech: 1,
            ordering: 2,
            threads: 3,
            flags: 0,
            hidden: 32,
            episodes: 7,
            seed: 0xDEAD_BEEF,
            max_steps: 100,
            max_wall_ms: 2_000,
            job_key: 42,
            deadline_ms: 30_000,
            max_retries: 2,
            lef: "LIB".into(),
            def: "DESIGN d ; END".into(),
        }
    }

    /// Encodes `s` with the legacy v1 layout (no durability fields).
    fn encode_spec_v1(s: &JobSpec) -> Vec<u8> {
        let mut out = vec![
            SPEC_VERSION_V1,
            s.kind as u8,
            s.tech,
            s.ordering,
            s.threads,
            s.flags,
        ];
        out.extend_from_slice(&s.hidden.to_le_bytes());
        out.extend_from_slice(&s.episodes.to_le_bytes());
        out.extend_from_slice(&s.seed.to_le_bytes());
        out.extend_from_slice(&s.max_steps.to_le_bytes());
        out.extend_from_slice(&s.max_wall_ms.to_le_bytes());
        out.extend_from_slice(&s.job_key.to_le_bytes());
        put_str(&mut out, &s.lef);
        put_str(&mut out, &s.def);
        out
    }

    /// Wraps a raw SUBMIT payload in a sealed frame.
    fn frame_submit_payload(payload: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.push(0x01);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes
    }

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Submit(sample_spec()),
            Frame::Submit(JobSpec {
                kind: JobKind::Gplace,
                ..sample_spec()
            }),
            Frame::Query(9),
            Frame::Cancel(10),
            Frame::Ping,
            Frame::Shutdown,
            Frame::Accepted { job: 3 },
            Frame::Rejected {
                code: reject::QUEUE_FULL,
                reason: "shard 2 full".into(),
            },
            Frame::Progress {
                job: 3,
                chunk: "{\"kind\":\"job.start\"}\n".into(),
            },
            Frame::Result {
                job: 3,
                ok: true,
                def: "DESIGN out ; END".into(),
                stats: "{\"legalized\":5}".into(),
            },
            Frame::Error {
                message: "nope".into(),
            },
            Frame::Pong,
            Frame::Status { job: 3, state: 2 },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for f in all_frames() {
            let bytes = encode_frame(&f);
            let (back, n) = decode_frame(&bytes, MAX_FRAME).expect("decode");
            assert_eq!(n, bytes.len());
            assert_eq!(back, f);
        }
    }

    #[test]
    fn job_kind_3_decodes_and_4_is_malformed() {
        let spec = JobSpec {
            kind: JobKind::Gplace,
            ..sample_spec()
        };
        let bytes = encode_frame(&Frame::Submit(spec.clone()));
        let (back, _) = decode_frame(&bytes, MAX_FRAME).expect("gplace kind decodes");
        assert_eq!(back, Frame::Submit(spec));
        // The next unassigned kind byte must stay a hard error. Payload
        // layout: [version, kind, ...]; re-seal the CRC after corrupting.
        let mut bytes = encode_frame(&Frame::Submit(sample_spec()));
        bytes[HEADER_LEN + 1] = 4;
        let crc = crc32(&bytes[HEADER_LEN..]);
        bytes[9..13].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes, MAX_FRAME).unwrap_err(),
            ProtoError::Malformed(_)
        ));
    }

    #[test]
    fn legacy_v1_spec_decodes_with_durability_defaults() {
        let sent = sample_spec();
        let bytes = frame_submit_payload(&encode_spec_v1(&sent));
        let (frame, _) = decode_frame(&bytes, MAX_FRAME).expect("v1 decodes");
        let Frame::Submit(got) = frame else {
            panic!("not a submit");
        };
        assert_eq!(got.deadline_ms, 0, "v1 has no deadline");
        assert_eq!(got.max_retries, 0, "v1 has no retry budget");
        assert_eq!(
            got,
            JobSpec {
                deadline_ms: 0,
                max_retries: 0,
                ..sent
            }
        );
    }

    #[test]
    fn spec_version_2_stays_malformed() {
        // Version 2 was never shipped; the corpus pins it as a hard error
        // and a v3 decoder must not resurrect it.
        let mut payload = encode_spec_v1(&sample_spec());
        payload[0] = 2;
        let bytes = frame_submit_payload(&payload);
        assert!(matches!(
            decode_frame(&bytes, MAX_FRAME).unwrap_err(),
            ProtoError::Malformed(_)
        ));
    }

    #[test]
    fn spec_bytes_round_trip_standalone() {
        let s = sample_spec();
        let bytes = encode_spec_bytes(&s);
        assert_eq!(decode_spec_bytes(&bytes).expect("round trip"), s);
        // Trailing garbage after the spec is a layout violation.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_spec_bytes(&long).is_err());
        // A truncated spec is malformed, never a panic.
        assert!(decode_spec_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn truncation_is_recoverable_not_fatal() {
        let bytes = encode_frame(&Frame::Submit(sample_spec()));
        for cut in [0, 4, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            let e = decode_frame(&bytes[..cut], MAX_FRAME).unwrap_err();
            assert!(e.is_truncated(), "cut {cut}: {e:?}");
        }
    }

    #[test]
    fn crc_flip_and_bad_magic_are_fatal() {
        let mut bytes = encode_frame(&Frame::Ping);
        bytes[0] = b'X';
        assert_eq!(
            decode_frame(&bytes, MAX_FRAME).unwrap_err(),
            ProtoError::BadMagic
        );
        let mut bytes = encode_frame(&Frame::Accepted { job: 1 });
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode_frame(&bytes, MAX_FRAME).unwrap_err(),
            ProtoError::CrcMismatch { .. }
        ));
    }

    #[test]
    fn oversized_declaration_is_rejected_before_buffering() {
        let mut bytes = encode_frame(&Frame::Ping);
        bytes[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes, 1024).unwrap_err(),
            ProtoError::Oversized { cap: 1024, .. }
        ));
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        // A Pong with one payload byte: layout says empty.
        let payload = [7u8];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(0x86);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            decode_frame(&bytes, MAX_FRAME).unwrap_err(),
            ProtoError::Malformed(_)
        ));
    }

    #[test]
    fn streaming_reader_matches_whole_buffer_decode() {
        let frames = all_frames();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        // Feed one byte at a time: the reader must produce the exact same
        // frame sequence.
        let mut rd = FrameReader::new();
        let mut got = Vec::new();
        for &b in &wire {
            rd.push(&[b]);
            while let Some(f) = rd.next_frame(MAX_FRAME).expect("stream") {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(rd.pending(), 0);
    }

    #[test]
    fn reader_poisons_on_garbage() {
        let mut rd = FrameReader::new();
        rd.push(b"GARBAGE NOT A FRAME.....");
        assert!(rd.next_frame(MAX_FRAME).is_err());
    }
}
