//! Sharded, bounded job queue with explicit backpressure.
//!
//! Jobs hash to a shard by their id; each shard holds at most `depth`
//! queued jobs. A full shard refuses the push — the server answers with a
//! REJECTED frame (HTTP 429) instead of buffering unboundedly, so memory
//! under overload is capped by construction and clients get an honest
//! retry signal. Executors pop starting at their own shard and scan the
//! others (work conservation: a busy shard's backlog is stolen by idle
//! executors), blocking on a condvar while every shard is empty.
//!
//! Only poppers ever remove items — that invariant is what lets `pop`
//! claim an item by decrementing the count and then scan the shards
//! without re-taking the count lock. Cancellation is therefore logical,
//! not physical: a cancelled job's id stays queued and the executor that
//! eventually pops it discards it (its `JobTable::claim` fails).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The job's shard is at capacity: backpressure, retry later.
    Full,
    /// The queue is closed (server draining); no new work is accepted.
    Closed,
}

/// Recovers data from a poisoned mutex: every value behind the queue's
/// locks is updated in single statements and cannot be observed torn.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Tracks total queued items and the closed flag under one lock so
/// blocked poppers have a single condvar to wait on.
struct Avail {
    count: usize,
    closed: bool,
}

/// A bounded multi-shard FIFO of job ids.
pub struct ShardedQueue<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    depth: usize,
    avail: Mutex<Avail>,
    ready: Condvar,
}

impl<T> ShardedQueue<T> {
    /// A queue of `shards` shards, each bounded to `depth` items.
    pub fn new(shards: usize, depth: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            depth: depth.max(1),
            avail: Mutex::new(Avail {
                count: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Maximum queued items across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.depth
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        relock(&self.avail).count
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard `hint` hashes to.
    pub fn shard_of(&self, hint: u64) -> usize {
        // Fibonacci hash: consecutive ids spread across shards instead of
        // clustering in one.
        (hint.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.shards.len()
    }

    /// Enqueues `item` on the shard `hint` hashes to.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when that shard is at capacity (backpressure);
    /// [`PushError::Closed`] once [`close`](Self::close) was called.
    pub fn push(&self, item: T, hint: u64) -> Result<(), PushError> {
        let shard = self.shard_of(hint);
        {
            let avail = relock(&self.avail);
            if avail.closed {
                return Err(PushError::Closed);
            }
            // Insert while holding `avail`: a popper that sees count > 0
            // is guaranteed to find the item in some shard.
            let mut q = relock(&self.shards[shard]);
            if q.len() >= self.depth {
                return Err(PushError::Full);
            }
            q.push_back(item);
            drop(q);
            let mut avail = avail;
            avail.count += 1;
        }
        self.ready.notify_one();
        Ok(())
    }

    /// Pops one item, blocking while the queue is empty. Scans shards
    /// starting at `worker` (stealing from busier shards when the home
    /// shard is empty). Returns `None` once the queue is closed *and*
    /// drained.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let mut avail = relock(&self.avail);
        loop {
            if avail.count > 0 {
                avail.count -= 1;
                drop(avail);
                // `count` was decremented under the lock, claiming one of
                // the items inserted before it was incremented — some
                // shard holds it and only poppers remove items, so the
                // scan must find one.
                loop {
                    for i in 0..self.shards.len() {
                        let idx = (worker + i) % self.shards.len();
                        if let Some(item) = relock(&self.shards[idx]).pop_front() {
                            return Some(item);
                        }
                    }
                    std::thread::yield_now();
                }
            }
            if avail.closed {
                return None;
            }
            avail = self
                .ready
                .wait(avail)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked poppers return `None` once empty.
    pub fn close(&self) {
        relock(&self.avail).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn per_shard_backpressure_rejects_when_full() {
        let q = ShardedQueue::new(2, 2);
        assert_eq!(q.capacity(), 4);
        // Fill one shard to its depth using hints that hash to it.
        let shard0_hints: Vec<u64> = (0..100).filter(|&h| q.shard_of(h) == 0).take(3).collect();
        assert!(q.push(shard0_hints[0], shard0_hints[0]).is_ok());
        assert!(q.push(shard0_hints[1], shard0_hints[1]).is_ok());
        assert_eq!(
            q.push(shard0_hints[2], shard0_hints[2]),
            Err(PushError::Full),
            "third push into a depth-2 shard must be refused"
        );
        // The *other* shard still accepts.
        let other: u64 = (0..100).find(|&h| q.shard_of(h) == 1).expect("hint");
        assert!(q.push(other, other).is_ok());
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn fifo_within_a_shard() {
        let q = ShardedQueue::new(1, 8);
        for i in 0..5u64 {
            q.push(i, 0).expect("push");
        }
        for i in 0..5u64 {
            assert_eq!(q.pop(0), Some(i));
        }
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = ShardedQueue::new(2, 4);
        q.push(1u64, 1).expect("push");
        q.close();
        assert_eq!(q.push(2, 2), Err(PushError::Closed));
        assert_eq!(q.pop(0), Some(1), "queued work still drains after close");
        assert_eq!(q.pop(0), None, "closed and empty");
    }

    #[test]
    fn concurrent_producers_and_stealing_consumers_lose_nothing() {
        let q = Arc::new(ShardedQueue::<u64>::new(4, 64));
        let seen = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..3)
            .map(|w| {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    while q.pop(w).is_some() {
                        seen.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        let total = 200u64;
        let mut pushed = 0usize;
        for i in 0..total {
            // Retry on Full: consumers are draining concurrently.
            loop {
                match q.push(i, i) {
                    Ok(()) => {
                        pushed += 1;
                        break;
                    }
                    Err(PushError::Full) => std::thread::yield_now(),
                    Err(PushError::Closed) => unreachable!(),
                }
            }
        }
        // Let consumers drain, then close.
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.close();
        for c in consumers {
            c.join().expect("consumer");
        }
        assert_eq!(seen.load(Ordering::Relaxed), pushed);
    }

    /// Regression for the CANCEL race: a popper that claimed the count
    /// must always find an item, even while other threads push and pop
    /// concurrently — nothing but `pop` may remove items, so no popper can
    /// ever wedge in its shard scan and the count can never underflow.
    #[test]
    fn heavy_concurrent_push_pop_never_wedges_or_underflows() {
        let q = Arc::new(ShardedQueue::<u64>::new(4, 16));
        let seen = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..4)
            .map(|w| {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    while q.pop(w).is_some() {
                        seen.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut pushed = 0usize;
                    for i in 0..500u64 {
                        loop {
                            match q.push(p * 1_000 + i, i) {
                                Ok(()) => {
                                    pushed += 1;
                                    break;
                                }
                                Err(PushError::Full) => std::thread::yield_now(),
                                Err(PushError::Closed) => unreachable!(),
                            }
                        }
                    }
                    pushed
                })
            })
            .collect();
        let total: usize = producers
            .into_iter()
            .map(|p| p.join().expect("producer"))
            .sum();
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.close();
        for c in consumers {
            c.join().expect("consumer");
        }
        assert_eq!(seen.load(Ordering::Relaxed), total);
        assert!(q.is_empty());
    }
}
