//! The `rlleg-serve` binary: job server, loopback smoke check, and load
//! generator.
//!
//! ```text
//! rlleg-serve [--addr 127.0.0.1:7878] [--executors N] [--shards N]
//!             [--depth N] [--chaos]
//!             [--journal FILE [--journal-max-kb N] [--journal-keep N]]
//!                                             # run the server
//! rlleg-serve --smoke                         # loopback self-check
//! rlleg-serve --loadgen [--sessions 64] [--jobs 4] [--scale 0.02]
//!             [--out BENCH_serve.json]        # 3-phase bench: closed
//!                                             # loop, overload, recovery
//! rlleg-serve --recover-smoke                 # kill/restart/recover check
//! ```

use std::io::{BufRead as _, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use rlleg_bench::Args;
use rlleg_benchgen::{find_spec, generate};
use rlleg_design::def::{parse_def, write_def};
use rlleg_design::{legality, Technology};
use rlleg_serve::client::Client;
use rlleg_serve::loadgen::{self, LoadConfig, RecoveryHarness, ServeBench};
use rlleg_serve::proto::JobSpec;
use rlleg_serve::server::{ServeConfig, Server};

fn small_def(scale: f64) -> String {
    // Contest family: parses back under the JobSpec-default tech (0).
    let spec = find_spec("fft_2_md2")
        .expect("benchmark table")
        .scaled(scale);
    write_def(&generate(&spec))
}

fn config_from(args: &Args) -> ServeConfig {
    ServeConfig {
        addr: args.get("addr", "127.0.0.1:0".to_string()),
        executors: args.get("executors", 0usize),
        shards: args.get("shards", 4usize),
        shard_depth: args.get("depth", 16usize),
        idle_timeout: Duration::from_millis(args.get("idle-ms", 10_000u64)),
        data_dir: std::path::PathBuf::from(args.get("data-dir", "target/serve-data".to_string())),
        chaos_enabled: args.flag("chaos"),
        ..ServeConfig::default()
    }
}

/// Installs a size-capped rotating JSONL journal when `--journal FILE` is
/// given (with `--journal-max-kb` / `--journal-keep` tuning the cap), and
/// enables telemetry so progress events and counters flow into it.
fn install_journal_from(args: &Args) -> bool {
    let path = args.get("journal", String::new());
    if path.is_empty() {
        return false;
    }
    let max_bytes = args.get("journal-max-kb", 4096u64).saturating_mul(1024);
    let keep = args.get("journal-keep", 4usize);
    let sink = telemetry::RotatingFile::create(&path, max_bytes, keep).expect("open journal file");
    telemetry::enable();
    telemetry::install_journal(telemetry::Journal::new(sink, 4096));
    println!("  journal: {path} (cap {max_bytes} B, keep {keep})");
    true
}

fn serve_main(args: &Args) {
    let mut cfg = config_from(args);
    if cfg.addr == "127.0.0.1:0" {
        cfg.addr = args.get("addr", "127.0.0.1:7878".to_string());
    }
    let handle = Server::start(cfg).expect("start server");
    println!("rlleg-serve listening on {}", handle.addr());
    println!("  binary protocol: frame magic RLSF; HTTP: GET /healthz, POST /jobs");
    println!("  send a SHUTDOWN frame to drain and exit");
    let journalling = install_journal_from(args);
    // The kill/restart harness reads this banner over a pipe; without an
    // explicit flush a SIGKILL'd child may never have surfaced it.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.wait();
    if journalling {
        if let Some(j) = telemetry::take_journal() {
            j.finish();
        }
    }
    println!("rlleg-serve drained and exited");
}

fn smoke_main(args: &Args) {
    let cfg = ServeConfig {
        data_dir: std::env::temp_dir().join(format!("rlleg-serve-smoke-{}", std::process::id())),
        ..config_from(args)
    };
    let data_dir = cfg.data_dir.clone();
    let handle = Server::start(cfg).expect("start server");
    let addr = handle.addr();
    println!("smoke: server on {addr}");
    let mut client = Client::connect(addr, Duration::from_secs(10)).expect("connect");
    client.ping(Duration::from_secs(10)).expect("ping");
    let spec = JobSpec {
        def: small_def(args.get("scale", 0.005)),
        ..JobSpec::default()
    };
    let result = client
        .run(&spec, Duration::from_secs(300))
        .expect("job round-trip");
    assert!(result.ok, "job reported failure: {}", result.stats);
    // `require_committed = false`: a parsed DEF carries positions, not the
    // in-memory `legalized` flags.
    let d = parse_def(&result.def, Technology::contest()).expect("result DEF parses");
    assert!(
        legality::check(&d, false).is_empty(),
        "result DEF must be legal"
    );
    println!("smoke: job {} legal, stats {}", result.job, result.stats);
    client.shutdown().expect("shutdown frame");
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&data_dir);
    println!("smoke: graceful shutdown OK");
}

/// Spawns a fresh `rlleg-serve` server child over `data_dir` and parses
/// the bound address off its banner. Stdout is piped and drained so the
/// child never blocks, and the banner line is flushed by `serve_main`
/// before any work — a later SIGKILL cannot hide it.
fn spawn_server_child(data_dir: &std::path::Path) -> (Child, SocketAddr) {
    let exe = std::env::current_exe().expect("current exe");
    let mut child = Command::new(exe)
        .args(["--addr", "127.0.0.1:0", "--executors", "2", "--data-dir"])
        .arg(data_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("child exited before banner")
            .expect("read banner");
        if let Some(rest) = line.strip_prefix("rlleg-serve listening on ") {
            break rest.trim().parse().expect("banner addr");
        }
    };
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, addr)
}

/// Runs the kill/restart phase against real child processes sharing one
/// data directory, so the SIGKILL loses exactly what a crash would lose.
fn run_recovery_phase(load: &LoadConfig) -> loadgen::RecoveryReport {
    let data_dir = std::env::temp_dir().join(format!("rlleg-serve-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let child: std::cell::RefCell<Option<Child>> = std::cell::RefCell::new(None);
    let mut start = || {
        let (c, addr) = spawn_server_child(&data_dir);
        child.borrow_mut().replace(c);
        addr
    };
    let mut kill = || {
        if let Some(mut c) = child.borrow_mut().take() {
            let _ = c.kill();
            let _ = c.wait();
        }
    };
    let report = loadgen::run_recovery(
        &mut RecoveryHarness {
            start: &mut start,
            kill: &mut kill,
        },
        load,
    );
    let _ = std::fs::remove_dir_all(&data_dir);
    report
}

fn assert_recovery_clean(r: &loadgen::RecoveryReport) {
    assert_eq!(r.jobs_lost, 0, "acknowledged jobs lost across the kill");
    assert_eq!(
        r.divergent, 0,
        "a recovered job re-ran to a different answer"
    );
    assert!(r.rc_acked > 0, "recovery phase acknowledged no jobs");
}

fn loadgen_main(args: &Args) {
    let timeout = Duration::from_secs(args.get("timeout-s", 300u64));

    // Phase 1 — closed loop: steady-state throughput and latency under a
    // default admission budget; every job must complete.
    let cfg = ServeConfig {
        data_dir: std::env::temp_dir().join(format!("rlleg-serve-load-{}", std::process::id())),
        ..config_from(args)
    };
    let data_dir = cfg.data_dir.clone();
    let handle = Server::start(cfg).expect("start server");
    let load = LoadConfig {
        sessions: args.get("sessions", 64usize),
        jobs_per_session: args.get("jobs", 4usize),
        def: small_def(args.get("scale", 0.02)),
        timeout,
        max_attempts: args.get("attempts", 0usize),
    };
    println!(
        "loadgen: closed loop, {} sessions x {} jobs against {}",
        load.sessions,
        load.jobs_per_session,
        handle.addr()
    );
    let closed_loop = loadgen::run(handle.addr(), &load);
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&data_dir);
    assert_eq!(
        closed_loop.jobs_ok,
        (load.sessions * load.jobs_per_session) as u64,
        "every closed-loop job must eventually complete"
    );

    // Phase 2 — overload: a starved admission budget (room for ~2 jobs)
    // against far more offered work. Shedding may refuse, never lose.
    let ov_def = small_def(args.get("ov-scale", 0.01));
    let one_cost = rlleg_serve::admission::cost_of(&JobSpec {
        def: ov_def.clone(),
        ..JobSpec::default()
    });
    let cfg = ServeConfig {
        data_dir: std::env::temp_dir().join(format!("rlleg-serve-ov-{}", std::process::id())),
        executors: 2,
        shards: 2,
        shard_depth: 4,
        max_inflight_cost: one_cost.saturating_mul(2).max(1),
        ..config_from(args)
    };
    let data_dir = cfg.data_dir.clone();
    let handle = Server::start(cfg).expect("start overload server");
    let ov_load = LoadConfig {
        sessions: args.get("ov-sessions", 16usize),
        jobs_per_session: args.get("ov-jobs", 2usize),
        def: ov_def,
        timeout,
        max_attempts: 0,
    };
    println!(
        "loadgen: overload, {} sessions x {} jobs, budget {} (~2 jobs)",
        ov_load.sessions,
        ov_load.jobs_per_session,
        one_cost.saturating_mul(2)
    );
    let overload = loadgen::run_overload(handle.addr(), &ov_load);
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&data_dir);
    assert_eq!(overload.ov_jobs_lost, 0, "overload lost accepted jobs");
    assert!(
        overload.ov_shed + overload.ov_queue_full > 0,
        "overload phase never tripped admission control"
    );

    // Phase 3 — recovery: SIGKILL a real server child mid-batch, restart
    // on the same data directory, audit every acknowledged job.
    let rc_load = LoadConfig {
        sessions: args.get("rc-sessions", 8usize),
        jobs_per_session: args.get("rc-jobs", 4usize),
        def: small_def(args.get("rc-scale", 0.005)),
        timeout: Duration::from_secs(args.get("rc-timeout-s", 120u64)),
        max_attempts: 0,
    };
    println!("loadgen: recovery, kill/restart audit over a server child");
    let recovery = run_recovery_phase(&rc_load);
    assert_recovery_clean(&recovery);

    let bench = ServeBench {
        closed_loop,
        overload,
        recovery,
    };
    let out = args.get("out", "BENCH_serve.json".to_string());
    std::fs::write(&out, bench.to_json()).expect("write report");
    println!("{}", bench.to_json());
    println!("loadgen: report written to {out}");
}

/// Minimal kill/restart/recover check for CI: one small batch, one
/// SIGKILL, zero acknowledged jobs lost or divergent.
fn recover_smoke_main(args: &Args) {
    let load = LoadConfig {
        sessions: args.get("sessions", 2usize),
        jobs_per_session: args.get("jobs", 4usize),
        def: small_def(args.get("scale", 0.005)),
        timeout: Duration::from_secs(args.get("timeout-s", 120u64)),
        max_attempts: 0,
    };
    let report = run_recovery_phase(&load);
    println!(
        "recover-smoke: acked {} | served {} rerun {} | lost {} divergent {}",
        report.rc_acked,
        report.rc_recovered_served,
        report.rc_recovered_rerun,
        report.jobs_lost,
        report.divergent
    );
    assert_recovery_clean(&report);
    println!("recover-smoke: no acknowledged job lost across SIGKILL");
}

fn main() {
    let args = Args::from_env();
    if args.flag("smoke") {
        smoke_main(&args);
    } else if args.flag("loadgen") {
        loadgen_main(&args);
    } else if args.flag("recover-smoke") {
        recover_smoke_main(&args);
    } else {
        serve_main(&args);
    }
}
