//! The `rlleg-serve` binary: job server, loopback smoke check, and load
//! generator.
//!
//! ```text
//! rlleg-serve [--addr 127.0.0.1:7878] [--executors N] [--shards N]
//!             [--depth N] [--chaos]          # run the server
//! rlleg-serve --smoke                         # loopback self-check
//! rlleg-serve --loadgen [--sessions 64] [--jobs 4] [--scale 0.02]
//!             [--out BENCH_serve.json]        # load run + report
//! ```

use std::time::Duration;

use rlleg_bench::Args;
use rlleg_benchgen::{find_spec, generate};
use rlleg_design::def::{parse_def, write_def};
use rlleg_design::{legality, Technology};
use rlleg_serve::client::Client;
use rlleg_serve::loadgen::{self, LoadConfig};
use rlleg_serve::proto::JobSpec;
use rlleg_serve::server::{ServeConfig, Server};

fn small_def(scale: f64) -> String {
    // Contest family: parses back under the JobSpec-default tech (0).
    let spec = find_spec("fft_2_md2")
        .expect("benchmark table")
        .scaled(scale);
    write_def(&generate(&spec))
}

fn config_from(args: &Args) -> ServeConfig {
    ServeConfig {
        addr: args.get("addr", "127.0.0.1:0".to_string()),
        executors: args.get("executors", 0usize),
        shards: args.get("shards", 4usize),
        shard_depth: args.get("depth", 16usize),
        idle_timeout: Duration::from_millis(args.get("idle-ms", 10_000u64)),
        data_dir: std::path::PathBuf::from(args.get("data-dir", "target/serve-data".to_string())),
        chaos_enabled: args.flag("chaos"),
        ..ServeConfig::default()
    }
}

fn serve_main(args: &Args) {
    let mut cfg = config_from(args);
    if cfg.addr == "127.0.0.1:0" {
        cfg.addr = args.get("addr", "127.0.0.1:7878".to_string());
    }
    let handle = Server::start(cfg).expect("start server");
    println!("rlleg-serve listening on {}", handle.addr());
    println!("  binary protocol: frame magic RLSF; HTTP: GET /healthz, POST /jobs");
    println!("  send a SHUTDOWN frame to drain and exit");
    handle.wait();
    println!("rlleg-serve drained and exited");
}

fn smoke_main(args: &Args) {
    let cfg = ServeConfig {
        data_dir: std::env::temp_dir().join(format!("rlleg-serve-smoke-{}", std::process::id())),
        ..config_from(args)
    };
    let data_dir = cfg.data_dir.clone();
    let handle = Server::start(cfg).expect("start server");
    let addr = handle.addr();
    println!("smoke: server on {addr}");
    let mut client = Client::connect(addr, Duration::from_secs(10)).expect("connect");
    client.ping(Duration::from_secs(10)).expect("ping");
    let spec = JobSpec {
        def: small_def(args.get("scale", 0.005)),
        ..JobSpec::default()
    };
    let result = client
        .run(&spec, Duration::from_secs(300))
        .expect("job round-trip");
    assert!(result.ok, "job reported failure: {}", result.stats);
    // `require_committed = false`: a parsed DEF carries positions, not the
    // in-memory `legalized` flags.
    let d = parse_def(&result.def, Technology::contest()).expect("result DEF parses");
    assert!(
        legality::check(&d, false).is_empty(),
        "result DEF must be legal"
    );
    println!("smoke: job {} legal, stats {}", result.job, result.stats);
    client.shutdown().expect("shutdown frame");
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&data_dir);
    println!("smoke: graceful shutdown OK");
}

fn loadgen_main(args: &Args) {
    let cfg = ServeConfig {
        data_dir: std::env::temp_dir().join(format!("rlleg-serve-load-{}", std::process::id())),
        ..config_from(args)
    };
    let data_dir = cfg.data_dir.clone();
    let handle = Server::start(cfg).expect("start server");
    let load = LoadConfig {
        sessions: args.get("sessions", 64usize),
        jobs_per_session: args.get("jobs", 4usize),
        def: small_def(args.get("scale", 0.02)),
        timeout: Duration::from_secs(args.get("timeout-s", 300u64)),
        max_attempts: args.get("attempts", 0usize),
    };
    println!(
        "loadgen: {} sessions x {} jobs against {}",
        load.sessions,
        load.jobs_per_session,
        handle.addr()
    );
    let report = loadgen::run(handle.addr(), &load);
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&data_dir);
    let out = args.get("out", "BENCH_serve.json".to_string());
    std::fs::write(&out, report.to_json()).expect("write report");
    println!("{}", report.to_json());
    println!("loadgen: report written to {out}");
    assert_eq!(
        report.jobs_ok,
        (load.sessions * load.jobs_per_session) as u64,
        "every job must eventually complete"
    );
}

fn main() {
    let args = Args::from_env();
    if args.flag("smoke") {
        smoke_main(&args);
    } else if args.flag("loadgen") {
        loadgen_main(&args);
    } else {
        serve_main(&args);
    }
}
