//! Job execution: a fixed set of executor threads draining the sharded
//! queue.
//!
//! The executor set is created once at server start — requests never spawn
//! threads. Inner compute (the per-Gcell parallel solve) dispatches onto
//! the process-global [`rlleg_legalize::pool`] worker pool, so a burst of
//! concurrent jobs shares one set of compute threads instead of
//! oversubscribing the host. Every job runs under `catch_unwind`: a
//! panicking job (including injected chaos kills) fails *that job* with a
//! FAILED state and an error message, never the server.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use rl_legalizer::{CellWiseNet, CheckpointStore, InferenceBudget, RlConfig, RlLegalizer, Trainer};
use rlleg_design::def::{parse_def, parse_def_with_library, write_def};
use rlleg_design::lef::Library;
use rlleg_design::{legality, Design, Technology};
use rlleg_legalize::{GcellGrid, Legalizer, Ordering};
use telemetry::journal::Event;

use crate::admission::Admission;
use crate::job::{unix_ms_now, JobId, JobOutcome, JobTable};
use crate::proto::{flags, JobKind, JobSpec};
use crate::queue::ShardedQueue;
use crate::wal::Wal;

/// Executor-side configuration (a slice of the server config).
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Inner solver threads for jobs that leave [`JobSpec::threads`] at 0.
    pub inner_threads: usize,
    /// Directory for per-job-key checkpoint stores.
    pub data_dir: PathBuf,
    /// Honor chaos-injection flags in job specs (tests/harness only).
    pub chaos_enabled: bool,
    /// Save a training checkpoint every N episodes.
    pub ckpt_every: usize,
}

/// Stats object serialized into the RESULT frame.
#[derive(Debug, Default, Serialize)]
pub struct JobStats {
    /// Job kind as submitted (0/1/2).
    pub kind: u8,
    /// Cells legalized (legalize/RL kinds).
    pub legalized: usize,
    /// Cells that could not be placed.
    pub failed: usize,
    /// Gcells quarantined by the fault-isolation layer.
    pub quarantined: usize,
    /// `true` when the result passed the full legality check.
    pub legal: bool,
    /// Budget degradation reason ("" for healthy runs).
    pub degraded: String,
    /// Cells placed by the degraded fallback path.
    pub degraded_cells: usize,
    /// Episodes completed (training kind).
    pub episodes: usize,
    /// Post-global-placement HPWL in dbu (gplace kind).
    pub gp_hpwl: i64,
    /// Final bin-overflow fraction of the global placement (gplace kind).
    pub gp_overflow: f64,
    /// Outer solve→spread iterations the placer ran (gplace kind).
    pub gp_iterations: usize,
    /// Episode the run resumed from (0 = fresh start).
    pub resumed_from_episode: usize,
    /// Wall-clock of the execution phase in milliseconds.
    pub wall_ms: u64,
}

/// Parses the job's LEF/DEF into a [`Design`].
fn parse_input(spec: &JobSpec) -> Result<Design, String> {
    let tech = match spec.tech {
        0 => Technology::contest(),
        _ => Technology::nangate45(),
    };
    if spec.lef.is_empty() {
        parse_def(&spec.def, tech).map_err(|e| format!("DEF parse: {e}"))
    } else {
        let lib = Library::parse(&spec.lef).map_err(|e| format!("LEF parse: {e}"))?;
        parse_def_with_library(&spec.def, &lib, &tech).map_err(|e| format!("DEF parse: {e}"))
    }
}

fn ordering_of(spec: &JobSpec) -> Ordering {
    match spec.ordering {
        0 => Ordering::SizeDescending,
        1 => Ordering::XAscending,
        _ => Ordering::Random(spec.seed),
    }
}

/// The job's inference budget, with the wall limit clamped to whatever
/// remains of its deadline — the existing watchdog *is* the in-run
/// deadline enforcement (it degrades to the fallback path instead of
/// overshooting); the executor's post-run check is the hard backstop.
fn budget_of(spec: &JobSpec, remaining_ms: Option<u64>) -> InferenceBudget {
    let wall_ms = match (spec.max_wall_ms, remaining_ms) {
        (0, None) => 0,
        (0, Some(r)) => r,
        (w, None) => w,
        (w, Some(r)) => w.min(r),
    };
    InferenceBudget {
        max_steps: (spec.max_steps > 0).then_some(spec.max_steps),
        max_wall: (wall_ms > 0).then(|| std::time::Duration::from_millis(wall_ms)),
    }
}

/// Milliseconds left before the job's deadline (`None` = no deadline;
/// `Some(0)` = already expired).
fn remaining_ms(accepted_unix_ms: u64, spec: &JobSpec) -> Option<u64> {
    (spec.deadline_ms > 0).then(|| {
        accepted_unix_ms
            .saturating_add(spec.deadline_ms)
            .saturating_sub(unix_ms_now())
    })
}

/// Runs one job to completion. Pure with respect to server state: all
/// effects go through `table.progress` and the returned outcome.
///
/// # Errors
///
/// Returns a human-readable error for unusable inputs; panics (chaos
/// kills, solver bugs) are caught by the executor loop above this.
pub fn run_job(
    cfg: &ExecConfig,
    table: &JobTable,
    id: JobId,
    spec: &JobSpec,
    remaining_ms: Option<u64>,
) -> Result<JobOutcome, String> {
    let t0 = Instant::now();
    let mut stats = JobStats {
        kind: spec.kind as u8,
        ..JobStats::default()
    };
    let design = parse_input(spec)?;
    table.progress(
        id,
        Event::new("job.parsed")
            .with("job", id)
            .with("cells", design.num_movable()),
    );
    let chaos_kill = cfg.chaos_enabled && spec.flags & flags::CHAOS_PANIC != 0;
    if chaos_kill && spec.kind != JobKind::Train {
        panic!("chaos: kill mid-job {id}");
    }
    let threads = if spec.threads == 0 {
        cfg.inner_threads
    } else {
        spec.threads as usize
    };
    let outcome = match spec.kind {
        JobKind::Legalize => run_legalize(table, id, design, spec, threads, &mut stats),
        JobKind::Gplace => run_gplace(table, id, design, spec, threads, &mut stats),
        JobKind::RlLegalize => run_rl(table, id, design, spec, remaining_ms, &mut stats),
        JobKind::Train => run_train(cfg, table, id, design, spec, chaos_kill, &mut stats)?,
    };
    stats.wall_ms = t0.elapsed().as_millis() as u64;
    let ok = outcome.0;
    let def = outcome.1;
    table.progress(
        id,
        Event::new("job.done")
            .with("job", id)
            .with("ok", ok)
            .with("wall_ms", stats.wall_ms),
    );
    Ok(JobOutcome {
        ok,
        def,
        stats: serde_json::to_string(&stats).unwrap_or_else(|_| "{}".into()),
    })
}

fn run_legalize(
    table: &JobTable,
    id: JobId,
    mut design: Design,
    spec: &JobSpec,
    threads: usize,
    stats: &mut JobStats,
) -> (bool, String) {
    let gcells = GcellGrid::auto(&design);
    let mut lg = Legalizer::new(&design);
    let run = lg.run_gcells_parallel(&mut design, &ordering_of(spec), &gcells, threads);
    stats.legalized = run.legalized;
    stats.failed = run.failed.len();
    stats.quarantined = run.quarantined.len();
    stats.legal = legality::check(&design, true).is_empty();
    table.progress(
        id,
        Event::new("job.legalized")
            .with("job", id)
            .with("placed", run.legalized)
            .with("failed", run.failed.len()),
    );
    (run.is_complete() && stats.legal, write_def(&design))
}

/// Global placement followed by deterministic legalization: the submitted
/// DEF's positions are treated as the warm-start placement, refined by
/// `rlleg_gplace::place`, and the result is legalized exactly like a
/// [`JobKind::Legalize`] job.
fn run_gplace(
    table: &JobTable,
    id: JobId,
    mut design: Design,
    spec: &JobSpec,
    threads: usize,
    stats: &mut JobStats,
) -> (bool, String) {
    let gp = rlleg_gplace::place(
        &mut design,
        &rlleg_gplace::GpConfig {
            seed: spec.seed,
            ..rlleg_gplace::GpConfig::default()
        },
    );
    stats.gp_hpwl = gp.hpwl;
    stats.gp_overflow = gp.overflow.last().copied().unwrap_or(0.0);
    stats.gp_iterations = gp.iterations;
    table.progress(
        id,
        Event::new("job.gplaced")
            .with("job", id)
            .with("hpwl", gp.hpwl)
            .with("iterations", gp.iterations),
    );
    run_legalize(table, id, design, spec, threads, stats)
}

fn run_rl(
    table: &JobTable,
    id: JobId,
    mut design: Design,
    spec: &JobSpec,
    remaining_ms: Option<u64>,
    stats: &mut JobStats,
) -> (bool, String) {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let net = CellWiseNet::new(spec.hidden.max(1) as usize, &mut rng);
    let report = RlLegalizer::new(net)
        .with_budget(budget_of(spec, remaining_ms))
        .legalize(&mut design);
    stats.legalized = report.legalized;
    stats.failed = report.failed.len();
    stats.degraded = report
        .degraded
        .map(|r| format!("{r:?}"))
        .unwrap_or_default();
    stats.degraded_cells = report.degraded_cells;
    stats.legal = legality::check(&design, true).is_empty();
    table.progress(
        id,
        Event::new("job.rl_pass")
            .with("job", id)
            .with("placed", report.legalized)
            .with("degraded", !stats.degraded.is_empty()),
    );
    (report.is_complete() && stats.legal, write_def(&design))
}

fn run_train(
    cfg: &ExecConfig,
    table: &JobTable,
    id: JobId,
    design: Design,
    spec: &JobSpec,
    chaos_kill: bool,
    stats: &mut JobStats,
) -> Result<(bool, String), String> {
    let rl_cfg = RlConfig {
        episodes: spec.episodes.max(1) as usize,
        agents: 2,
        hidden_dim: spec.hidden.max(1) as usize,
        seed: spec.seed,
        pretrain_episodes: 0,
        ..RlConfig::small()
    };
    let designs = [design];
    // Keyed jobs are resumable: the store survives server restarts and a
    // resubmission with the same key continues where the last checkpoint
    // left off — including past a corrupted newest generation, which the
    // store skips with its newest-valid fallback.
    let store = if spec.job_key != 0 {
        Some(
            CheckpointStore::new(cfg.data_dir.join(format!("ckpt-{:016x}", spec.job_key)), 3)
                .map_err(|e| format!("checkpoint store: {e}"))?,
        )
    } else {
        None
    };
    let mut trainer = match store.as_ref().and_then(|s| s.load_latest()) {
        Some((_, mut state)) => {
            // A resubmission may carry a larger episode budget than the
            // checkpointed run; extend it so the resumed job trains on.
            state.cfg.episodes = state.cfg.episodes.max(rl_cfg.episodes);
            match Trainer::restore(&designs, &state) {
                Ok(t) => {
                    stats.resumed_from_episode = t.episode();
                    table.progress(
                        id,
                        Event::new("job.resumed")
                            .with("job", id)
                            .with("episode", t.episode()),
                    );
                    t
                }
                Err(_) => Trainer::new(&designs, &rl_cfg),
            }
        }
        None => Trainer::new(&designs, &rl_cfg),
    };
    let ckpt_every = cfg.ckpt_every.max(1);
    while trainer.run_episode() {
        table.progress(
            id,
            Event::new("job.episode")
                .with("job", id)
                .with("episode", trainer.episode())
                .with("steps", trainer.steps()),
        );
        if let Some(s) = &store {
            if trainer.episode() % ckpt_every == 0 || trainer.done() {
                s.save(&trainer.state())
                    .map_err(|e| format!("checkpoint save: {e}"))?;
            }
        }
        if chaos_kill && trainer.episode() >= 1 {
            // Kill only after at least one checkpoint exists so the chaos
            // suite can prove resume-after-kill.
            if let Some(s) = &store {
                let _ = s.save(&trainer.state());
            }
            panic!("chaos: kill mid-training {id}");
        }
    }
    stats.episodes = trainer.episode();
    stats.legal = true;
    let result = trainer.finish();
    let model = result
        .best_model
        .to_json()
        .map_err(|e| format!("model serialize: {e}"))?;
    // Training jobs return the model JSON in the stats channel's `def`
    // slot (there is no output placement).
    Ok((true, model))
}

/// Handle over the executor thread set.
pub struct Executors {
    handles: Vec<JoinHandle<()>>,
}

impl Executors {
    /// Spawns `n` executor threads draining `queue` into `table`,
    /// journalling transitions through `wal` and releasing admission
    /// cost on terminal states.
    pub fn spawn(
        n: usize,
        cfg: ExecConfig,
        queue: Arc<ShardedQueue<JobId>>,
        table: Arc<JobTable>,
        wal: Arc<Wal>,
        admission: Arc<Admission>,
    ) -> Self {
        let handles = (0..n.max(1))
            .map(|w| {
                let cfg = cfg.clone();
                let queue = Arc::clone(&queue);
                let table = Arc::clone(&table);
                let wal = Arc::clone(&wal);
                let admission = Arc::clone(&admission);
                std::thread::Builder::new()
                    .name(format!("rlleg-serve-exec-{w}"))
                    .spawn(move || executor_loop(w, &cfg, &queue, &table, &wal, &admission))
                    .expect("spawn executor")
            })
            .collect();
        Self { handles }
    }

    /// Waits for every executor to exit (call after `queue.close()`).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// What one execution attempt ended as, before the retry decision.
enum Attempt {
    Done(JobOutcome),
    /// `(error, transient)` — transient failures are retry candidates.
    Failed(String, bool),
}

/// `true` when the failed outcome looks transient: some Gcells were
/// quarantined (a flaky solver panic isolated by PR 5's fault layer), so
/// a re-run on a healthy executor may succeed.
fn quarantined_failure(outcome: &JobOutcome) -> bool {
    if outcome.ok {
        return false;
    }
    serde_json::from_str::<serde::Value>(&outcome.stats)
        .ok()
        .and_then(|v| match v.as_object()?.get("quarantined")? {
            serde::Value::Int(n) => Some(*n > 0),
            serde::Value::UInt(n) => Some(*n > 0),
            _ => None,
        })
        .unwrap_or(false)
}

/// Exponential backoff before retry `attempt + 1`: 50ms doubling, capped
/// at 2s.
fn backoff_ms(attempt: u32) -> u64 {
    (50u64 << attempt.saturating_sub(1).min(5)).min(2000)
}

/// Journals a terminal failure and records it in the table.
fn fail_job(table: &JobTable, wal: &Wal, id: JobId, error: String, counter: &str) {
    if !telemetry::disabled() {
        telemetry::counter(counter).inc();
    }
    table.progress(
        id,
        Event::new("job.error")
            .with("job", id)
            .with("error", error.as_str()),
    );
    wal.append_failed(id, &error);
    table.fail(id, error);
}

fn executor_loop(
    worker: usize,
    cfg: &ExecConfig,
    queue: &ShardedQueue<JobId>,
    table: &JobTable,
    wal: &Wal,
    admission: &Admission,
) {
    while let Some(id) = queue.pop(worker) {
        // Claiming moves the spec out of the table (the DEF/LEF text now
        // lives only with this executor); a cancelled-while-queued job
        // yields no spec and its stale queue entry is simply discarded.
        let Some(claimed) = table.claim(id) else {
            continue;
        };
        let spec = claimed.spec;
        let left = remaining_ms(claimed.accepted_unix_ms, &spec);
        if left == Some(0) {
            // The deadline passed while the job sat in the queue: fail it
            // without burning executor time on a result nobody wants.
            fail_job(
                table,
                wal,
                id,
                "deadline exceeded before start".into(),
                "serve.jobs.deadline",
            );
            admission.release(table.cost_of(id));
            continue;
        }
        wal.append_running(id, claimed.attempt);
        table.progress(
            id,
            Event::new("job.start")
                .with("job", id)
                .with("worker", worker)
                .with("attempt", u64::from(claimed.attempt)),
        );
        let t0 = Instant::now();
        let out = catch_unwind(AssertUnwindSafe(|| run_job(cfg, table, id, &spec, left)));
        if !telemetry::disabled() {
            telemetry::histogram("serve.job.wall_seconds", telemetry::buckets::SECONDS)
                .record(t0.elapsed().as_secs_f64());
        }
        let retries_left = claimed.attempt <= u32::from(spec.max_retries);
        let attempt = match out {
            Ok(Ok(outcome)) => {
                // Hard executor-side timeout: the watchdog should have kept
                // the run inside its deadline, but if it still overshot the
                // late result is discarded — clients were promised the
                // deadline, not a stale answer.
                if remaining_ms(claimed.accepted_unix_ms, &spec) == Some(0) {
                    Attempt::Failed("deadline exceeded (hard timeout)".into(), false)
                } else if retries_left && quarantined_failure(&outcome) {
                    // Without a retry budget the degraded result is still
                    // delivered (ok=false) exactly as before; with one, a
                    // re-run on a healthy executor may place everything.
                    Attempt::Failed("quarantined Gcells left cells unplaced".into(), true)
                } else {
                    Attempt::Done(outcome)
                }
            }
            Ok(Err(e)) => Attempt::Failed(e, false),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "job panicked".into());
                table.progress(
                    id,
                    Event::new("job.panic")
                        .with("job", id)
                        .with("error", msg.as_str()),
                );
                Attempt::Failed(format!("job panicked: {msg}"), true)
            }
        };
        match attempt {
            Attempt::Done(outcome) => {
                if !telemetry::disabled() {
                    telemetry::counter("serve.jobs.done").inc();
                }
                // Journal (fsynced) before the table flips to DONE: once a
                // client can see the result, it is already durable.
                wal.append_done(id, &outcome);
                table.finish(id, outcome);
                admission.release(table.cost_of(id));
            }
            Attempt::Failed(error, transient) => {
                let retryable = transient
                    && retries_left
                    && remaining_ms(claimed.accepted_unix_ms, &spec) != Some(0);
                if retryable {
                    if !telemetry::disabled() {
                        telemetry::counter("serve.jobs.retried").inc();
                    }
                    table.progress(
                        id,
                        Event::new("job.retry")
                            .with("job", id)
                            .with("attempt", u64::from(claimed.attempt))
                            .with("error", error.as_str()),
                    );
                    wal.append_requeued(id, claimed.attempt);
                    let at = Instant::now()
                        + std::time::Duration::from_millis(backoff_ms(claimed.attempt));
                    if !table.requeue(id, spec, at) {
                        // Lost the race with a teardown; surface the error.
                        fail_job(table, wal, id, error, "serve.jobs.failed");
                        admission.release(table.cost_of(id));
                    }
                } else {
                    let counter = if transient {
                        "serve.jobs.panicked"
                    } else {
                        "serve.jobs.failed"
                    };
                    fail_job(table, wal, id, error, counter);
                    admission.release(table.cost_of(id));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_benchgen::{find_spec, generate};

    fn small_def() -> String {
        // Contest family: parses back under the JobSpec-default tech (0).
        let spec = find_spec("fft_2_md2").expect("spec").scaled(0.002);
        write_def(&generate(&spec))
    }

    fn exec_cfg(tag: &str) -> ExecConfig {
        ExecConfig {
            inner_threads: 1,
            data_dir: std::env::temp_dir()
                .join(format!("rlleg-serve-exec-{tag}-{}", std::process::id())),
            chaos_enabled: false,
            ckpt_every: 2,
        }
    }

    #[test]
    fn legalize_job_produces_legal_def() {
        let table = JobTable::new();
        let spec = JobSpec {
            def: small_def(),
            ..JobSpec::default()
        };
        let id = table.insert(spec.clone());
        let out = run_job(&exec_cfg("leg"), &table, id, &spec, None).expect("run");
        assert!(out.ok, "stats: {}", out.stats);
        let d = parse_def(&out.def, Technology::contest()).expect("result parses");
        // `require_committed = false`: a parsed DEF carries positions, not
        // the in-memory `legalized` flags.
        assert!(legality::check(&d, false).is_empty());
        assert!(out.stats.contains("\"legalized\""));
    }

    #[test]
    fn gplace_job_refines_then_legalizes() {
        let table = JobTable::new();
        let spec = JobSpec {
            kind: JobKind::Gplace,
            def: small_def(),
            seed: 7,
            ..JobSpec::default()
        };
        let id = table.insert(spec.clone());
        let out = run_job(&exec_cfg("gp"), &table, id, &spec, None).expect("run");
        assert!(out.ok, "stats: {}", out.stats);
        let d = parse_def(&out.def, Technology::contest()).expect("result parses");
        assert!(legality::check(&d, false).is_empty());
        assert!(out.stats.contains("\"gp_hpwl\""), "stats: {}", out.stats);
    }

    #[test]
    fn rl_job_with_step_budget_degrades_but_stays_legal() {
        let table = JobTable::new();
        let spec = JobSpec {
            kind: JobKind::RlLegalize,
            max_steps: 2,
            hidden: 8,
            def: small_def(),
            ..JobSpec::default()
        };
        let id = table.insert(spec.clone());
        let out = run_job(&exec_cfg("rl"), &table, id, &spec, None).expect("run");
        assert!(out.ok, "stats: {}", out.stats);
        assert!(out.stats.contains("StepBudget"), "stats: {}", out.stats);
    }

    #[test]
    fn train_job_checkpoints_and_resumes_by_key() {
        let cfg = exec_cfg("train");
        let _ = std::fs::remove_dir_all(&cfg.data_dir);
        let table = JobTable::new();
        let spec = JobSpec {
            kind: JobKind::Train,
            episodes: 2,
            hidden: 8,
            job_key: 0xABCD,
            def: small_def(),
            ..JobSpec::default()
        };
        let id = table.insert(spec.clone());
        let out = run_job(&cfg, &table, id, &spec, None).expect("train");
        assert!(out.ok);
        assert!(out.def.contains("\"hidden_dim\"") || !out.def.is_empty());
        // Resubmit with a larger budget under the same key: must resume.
        let spec2 = JobSpec {
            episodes: 4,
            ..spec
        };
        let id2 = table.insert(spec2.clone());
        let out2 = run_job(&cfg, &table, id2, &spec2, None).expect("resume");
        assert!(
            out2.stats.contains("\"resumed_from_episode\": 2")
                || out2.stats.contains("\"resumed_from_episode\":2"),
            "stats: {}",
            out2.stats
        );
        let _ = std::fs::remove_dir_all(&cfg.data_dir);
    }

    #[test]
    fn bad_def_fails_cleanly() {
        let table = JobTable::new();
        let spec = JobSpec {
            def: "DESIGN broken".into(),
            ..JobSpec::default()
        };
        let id = table.insert(spec.clone());
        assert!(run_job(&exec_cfg("bad"), &table, id, &spec, None).is_err());
    }
}
