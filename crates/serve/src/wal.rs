//! Write-ahead job journal: crash durability for accepted work.
//!
//! Before the server acknowledges a submission (ACCEPTED frame / HTTP
//! 202), the job is appended to an on-disk journal and fsynced — the ack
//! *is* the durability contract. Every later state transition (RUNNING,
//! REQUEUED, DONE, FAILED, CANCELLED, DELIVERED) is journalled too, with
//! terminal outcomes fsynced before the RESULT frame is sent, so a crash
//! at any instant leaves the journal describing exactly what the server
//! promised. On restart [`Wal::open`] replays the journal: non-terminal
//! jobs are re-enqueued (training jobs resume from their
//! `CheckpointStore` generation), terminal-but-undelivered results are
//! served from the journal, and delivered terminals are forgotten.
//!
//! # Record format
//!
//! The journal is a sequence of segments `seg-<seq>.wal`. Each record is
//! CRC-32-framed exactly like the wire protocol:
//!
//! ```text
//! +-------+------+-------------+-----------+----------------+
//! | magic | type | payload_len | crc32     | payload        |
//! | RLWJ  | u8   | u32 LE      | u32 LE    | payload_len B  |
//! +-------+------+-------------+-----------+----------------+
//! ```
//!
//! The CRC ([`rl_legalizer::crc32`], the same polynomial as the wire
//! frames and the PR-5 checkpoint codec) covers the payload only. Replay
//! tolerates a torn record at the tail of the *final* segment — the
//! on-disk effect of SIGKILL mid-append — by discarding the tail; any
//! other corruption stops replay of that segment and is counted, never
//! guessed around.
//!
//! # Rotation and compaction
//!
//! When the live segment exceeds its size cap, [`Wal::maybe_rotate`]
//! compacts: the set of live jobs (everything not both terminal and
//! delivered, mirrored in memory under the same lock as the appends) is
//! rewritten into a fresh highest-numbered segment, fsynced, and the old
//! segments are deleted. A crash between the fsync and the deletes is
//! harmless: replay applies segments in sequence order and record
//! application is idempotent, so re-reading the old segments before the
//! compacted one reproduces the same state. [`Wal::open`] itself compacts
//! on startup for the same reason, so a torn tail never has new records
//! appended after it.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use rl_legalizer::crc32;

use crate::job::{state, JobId, JobOutcome};
use crate::proto::{decode_spec_bytes, encode_spec_bytes, JobSpec};

/// Journal record magic: "RLWJ" (RL-legalizer Write-ahead Journal).
pub const MAGIC: [u8; 4] = *b"RLWJ";

/// Fixed record header: magic (4) + type (1) + payload length (4) + CRC (4).
pub const HEADER_LEN: usize = 13;

/// Record types.
mod rec {
    /// Job accepted: id, acceptance wall-clock, attempt, optional spec.
    pub const ACCEPTED: u8 = 0x01;
    /// An executor claimed the job (attempt counter).
    pub const RUNNING: u8 = 0x02;
    /// A transient failure re-queued the job for another attempt.
    pub const REQUEUED: u8 = 0x03;
    /// Terminal success: ok flag, result DEF, stats JSON.
    pub const DONE: u8 = 0x04;
    /// Terminal failure: error text.
    pub const FAILED: u8 = 0x05;
    /// Cancelled while queued (the cancel ACK is the delivery).
    pub const CANCELLED: u8 = 0x06;
    /// The terminal result reached a client.
    pub const DELIVERED: u8 = 0x07;
}

/// A job as reconstructed from the journal (and mirrored in memory for
/// compaction).
#[derive(Debug, Clone)]
pub struct LiveJob {
    /// Journalled job id (ids survive restarts).
    pub id: JobId,
    /// The submitted spec; `None` once terminal (payloads are dropped from
    /// the journal's live set exactly like the job table drops them).
    pub spec: Option<JobSpec>,
    /// Acceptance wall-clock (Unix ms) — deadlines survive restarts.
    pub accepted_unix_ms: u64,
    /// Execution attempts started so far.
    pub attempt: u32,
    /// Last journalled state code (see [`crate::job::state`]).
    pub state: u8,
    /// Terminal outcome for DONE jobs.
    pub outcome: Option<JobOutcome>,
    /// Error text for FAILED jobs.
    pub error: Option<String>,
}

impl LiveJob {
    fn terminal(&self) -> bool {
        matches!(self.state, state::DONE | state::FAILED | state::CANCELLED)
    }
}

/// What [`Wal::open`] observed while replaying.
#[derive(Debug, Default, Clone)]
pub struct ReplayReport {
    /// Segments read.
    pub segments: usize,
    /// Complete records applied.
    pub records: u64,
    /// 1 when the final segment ended in a torn record (discarded).
    pub torn_tail: u64,
    /// Records abandoned to CRC/layout corruption in non-final positions.
    pub corrupt: u64,
    /// Live jobs recovered (non-terminal or undelivered terminal).
    pub jobs: usize,
}

struct WalInner {
    file: File,
    seg_seq: u64,
    seg_bytes: u64,
    live: BTreeMap<JobId, LiveJob>,
}

/// The write-ahead journal. One per server, shared by the event loop and
/// the executors; all appends and the compaction run under one lock so
/// the in-memory live set is always consistent with the bytes on disk.
pub struct Wal {
    dir: PathBuf,
    segment_bytes: u64,
    inner: Mutex<WalInner>,
}

fn seg_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:06}.wal"))
}

fn sync_dir(dir: &Path) {
    // Directory fsync makes creates/deletes durable; platforms where
    // directories cannot be opened lose only durability, not atomicity
    // (same tolerance as fsio::write_atomic).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn frame_record(ty: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(ty);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn accepted_payload(id: JobId, unix_ms: u64, attempt: u32, spec: Option<&JobSpec>) -> Vec<u8> {
    let mut p = Vec::new();
    p.extend_from_slice(&id.to_le_bytes());
    p.extend_from_slice(&unix_ms.to_le_bytes());
    p.extend_from_slice(&attempt.to_le_bytes());
    match spec {
        Some(s) => {
            let bytes = encode_spec_bytes(s);
            p.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            p.extend_from_slice(&bytes);
        }
        None => p.extend_from_slice(&0u32.to_le_bytes()),
    }
    p
}

/// One parsed record.
enum Record {
    Accepted {
        id: JobId,
        unix_ms: u64,
        attempt: u32,
        spec: Option<JobSpec>,
    },
    Running {
        id: JobId,
        attempt: u32,
    },
    Requeued {
        id: JobId,
        attempt: u32,
    },
    Done {
        id: JobId,
        outcome: JobOutcome,
    },
    Failed {
        id: JobId,
        error: String,
    },
    Cancelled {
        id: JobId,
    },
    Delivered {
        id: JobId,
    },
}

/// Bounds-checked little-endian payload reader (journal-local twin of the
/// wire protocol's; kept private to each codec on purpose — the two
/// formats must be free to diverge).
struct Rd<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.b.len())?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn str_block(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }
    fn done(self) -> Option<()> {
        (self.pos == self.b.len()).then_some(())
    }
}

fn parse_record(ty: u8, payload: &[u8]) -> Option<Record> {
    let mut r = Rd { b: payload, pos: 0 };
    let rec = match ty {
        rec::ACCEPTED => {
            let id = r.u64()?;
            let unix_ms = r.u64()?;
            let attempt = r.u32()?;
            let spec_len = r.u32()? as usize;
            let spec = if spec_len == 0 {
                None
            } else {
                Some(decode_spec_bytes(r.take(spec_len)?).ok()?)
            };
            Record::Accepted {
                id,
                unix_ms,
                attempt,
                spec,
            }
        }
        rec::RUNNING => Record::Running {
            id: r.u64()?,
            attempt: r.u32()?,
        },
        rec::REQUEUED => Record::Requeued {
            id: r.u64()?,
            attempt: r.u32()?,
        },
        rec::DONE => Record::Done {
            id: r.u64()?,
            outcome: JobOutcome {
                ok: r.u8()? != 0,
                def: r.str_block()?,
                stats: r.str_block()?,
            },
        },
        rec::FAILED => Record::Failed {
            id: r.u64()?,
            error: r.str_block()?,
        },
        rec::CANCELLED => Record::Cancelled { id: r.u64()? },
        rec::DELIVERED => Record::Delivered { id: r.u64()? },
        _ => return None,
    };
    r.done()?;
    Some(rec)
}

/// Applies one record to the live set. Idempotent: re-applying a
/// compacted restatement of existing state lands on the same state.
fn apply(live: &mut BTreeMap<JobId, LiveJob>, record: Record) {
    match record {
        Record::Accepted {
            id,
            unix_ms,
            attempt,
            spec,
        } => {
            // A spec-less ACCEPTED is a compaction restatement of a
            // terminal job; the DONE/FAILED record written right after
            // it supplies the real state. Until then QUEUED is the
            // correct provisional state either way.
            live.insert(
                id,
                LiveJob {
                    id,
                    spec,
                    accepted_unix_ms: unix_ms,
                    attempt,
                    state: state::QUEUED,
                    outcome: None,
                    error: None,
                },
            );
        }
        Record::Running { id, attempt } | Record::Requeued { id, attempt } => {
            if let Some(j) = live.get_mut(&id) {
                j.attempt = attempt;
                // Both map to "will be re-enqueued on recovery": a crash
                // mid-run and a crash mid-backoff recover identically.
                j.state = state::QUEUED;
            }
        }
        Record::Done { id, outcome } => {
            if let Some(j) = live.get_mut(&id) {
                j.state = state::DONE;
                j.outcome = Some(outcome);
                j.spec = None;
            }
        }
        Record::Failed { id, error } => {
            if let Some(j) = live.get_mut(&id) {
                j.state = state::FAILED;
                j.error = Some(error);
                j.spec = None;
            }
        }
        Record::Cancelled { id } => {
            // The cancel ACK was the delivery: nothing left to recover.
            live.remove(&id);
        }
        Record::Delivered { id } => {
            let gone = live.get(&id).is_some_and(LiveJob::terminal);
            if gone {
                live.remove(&id);
            }
        }
    }
}

/// Serializes the live set as a compacted segment: one ACCEPTED
/// restatement per job, followed by its terminal record when it has one.
fn snapshot_bytes(live: &BTreeMap<JobId, LiveJob>) -> Vec<u8> {
    let mut out = Vec::new();
    for job in live.values() {
        out.extend_from_slice(&frame_record(
            rec::ACCEPTED,
            &accepted_payload(job.id, job.accepted_unix_ms, job.attempt, job.spec.as_ref()),
        ));
        match job.state {
            state::DONE => {
                if let Some(o) = &job.outcome {
                    let mut p = Vec::new();
                    p.extend_from_slice(&job.id.to_le_bytes());
                    p.push(u8::from(o.ok));
                    put_str(&mut p, &o.def);
                    put_str(&mut p, &o.stats);
                    out.extend_from_slice(&frame_record(rec::DONE, &p));
                }
            }
            state::FAILED => {
                let mut p = Vec::new();
                p.extend_from_slice(&job.id.to_le_bytes());
                put_str(&mut p, job.error.as_deref().unwrap_or("unknown"));
                out.extend_from_slice(&frame_record(rec::FAILED, &p));
            }
            _ => {}
        }
    }
    out
}

/// Parses every record in `bytes`, applying them to `live`. Returns
/// `(records_applied, torn_tail, corrupt)`.
fn replay_segment(bytes: &[u8], live: &mut BTreeMap<JobId, LiveJob>) -> (u64, bool, u64) {
    let mut pos = 0usize;
    let mut applied = 0u64;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < HEADER_LEN {
            return (applied, true, 0);
        }
        if rest[0..4] != MAGIC {
            // Framing lost mid-segment: everything after is unreadable.
            return (applied, false, 1);
        }
        let ty = rest[4];
        let len = u32::from_le_bytes(rest[5..9].try_into().expect("4")) as usize;
        let expected = u32::from_le_bytes(rest[9..13].try_into().expect("4"));
        if rest.len() < HEADER_LEN + len {
            // The record's header landed but its payload did not: the
            // classic torn tail of a SIGKILL mid-append.
            return (applied, true, 0);
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        if crc32(payload) != expected {
            return (applied, true, 0);
        }
        match parse_record(ty, payload) {
            Some(record) => apply(live, record),
            // CRC passed but the layout is unknown (version skew):
            // count it and stop — later records may depend on it.
            None => return (applied, false, 1),
        }
        applied += 1;
        pos += HEADER_LEN + len;
    }
    (applied, false, 0)
}

impl Wal {
    /// Opens (or creates) the journal in `dir`, replaying any existing
    /// segments, then compacts the recovered live set into a fresh
    /// segment so appends never follow a torn tail. Returns the journal,
    /// the recovered jobs, and the replay report.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or writing the compacted
    /// segment. Unreadable *content* never errors — it is counted in the
    /// report instead.
    pub fn open(dir: &Path, segment_bytes: u64) -> io::Result<(Self, Vec<LiveJob>, ReplayReport)> {
        fs::create_dir_all(dir)?;
        let mut seqs: Vec<u64> = fs::read_dir(dir)?
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.strip_prefix("seg-")?
                    .strip_suffix(".wal")?
                    .parse::<u64>()
                    .ok()
            })
            .collect();
        seqs.sort_unstable();

        let mut live = BTreeMap::new();
        let mut report = ReplayReport {
            segments: seqs.len(),
            ..ReplayReport::default()
        };
        for (i, &seq) in seqs.iter().enumerate() {
            let bytes = fs::read(seg_path(dir, seq)).unwrap_or_default();
            let (applied, torn, corrupt) = replay_segment(&bytes, &mut live);
            report.records += applied;
            report.corrupt += corrupt;
            if torn {
                if i + 1 == seqs.len() {
                    report.torn_tail += 1;
                } else {
                    // A torn tail anywhere but the final segment means a
                    // segment was corrupted after it was sealed.
                    report.corrupt += 1;
                }
            }
        }
        report.jobs = live.len();

        // Compact into a fresh segment numbered past everything seen, so
        // new appends never extend a (possibly torn) old tail. Old
        // segments are deleted only after the new one is durable.
        let seg_seq = seqs.last().copied().unwrap_or(0) + 1;
        let path = seg_path(dir, seg_seq);
        let snapshot = snapshot_bytes(&live);
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        file.write_all(&snapshot)?;
        file.sync_data()?;
        sync_dir(dir);
        for &seq in &seqs {
            let _ = fs::remove_file(seg_path(dir, seq));
        }
        sync_dir(dir);

        let recovered: Vec<LiveJob> = live.values().cloned().collect();
        let wal = Self {
            dir: dir.to_path_buf(),
            segment_bytes: segment_bytes.max(4096),
            inner: Mutex::new(WalInner {
                file,
                seg_seq,
                seg_bytes: snapshot.len() as u64,
                live,
            }),
        };
        Ok((wal, recovered, report))
    }

    /// The highest job id the journal knows (0 when empty) — the job
    /// table's id counter must start past it.
    pub fn max_id(&self) -> JobId {
        let inner = relock(&self.inner);
        inner.live.keys().next_back().copied().unwrap_or(0)
    }

    /// Bytes appended to the current segment so far.
    pub fn current_segment_len(&self) -> u64 {
        relock(&self.inner).seg_bytes
    }

    /// Path of the segment currently being appended to.
    pub fn current_segment_path(&self) -> PathBuf {
        seg_path(&self.dir, relock(&self.inner).seg_seq)
    }

    /// Journals an acceptance. Fsynced: returns only once the record is
    /// durable, so the ACCEPTED frame sent after this call is an honest
    /// promise.
    ///
    /// # Errors
    ///
    /// The append's I/O error; the caller must *reject* the submission
    /// when this fails (an un-journalled ack would be a lie).
    pub fn append_accepted(&self, id: JobId, unix_ms: u64, spec: &JobSpec) -> io::Result<()> {
        let payload = accepted_payload(id, unix_ms, 0, Some(spec));
        let bytes = frame_record(rec::ACCEPTED, &payload);
        let mut inner = relock(&self.inner);
        inner.file.write_all(&bytes)?;
        inner.file.sync_data()?;
        inner.seg_bytes += bytes.len() as u64;
        inner.live.insert(
            id,
            LiveJob {
                id,
                spec: Some(spec.clone()),
                accepted_unix_ms: unix_ms,
                attempt: 0,
                state: state::QUEUED,
                outcome: None,
                error: None,
            },
        );
        Ok(())
    }

    /// Journals a claim (attempt start). Not fsynced — losing it only
    /// turns a RUNNING job back into a QUEUED one on recovery, which
    /// re-enqueues either way.
    pub fn append_running(&self, id: JobId, attempt: u32) {
        let mut p = Vec::new();
        p.extend_from_slice(&id.to_le_bytes());
        p.extend_from_slice(&attempt.to_le_bytes());
        let bytes = frame_record(rec::RUNNING, &p);
        let mut inner = relock(&self.inner);
        let _ = inner.file.write_all(&bytes);
        inner.seg_bytes += bytes.len() as u64;
        if let Some(j) = inner.live.get_mut(&id) {
            j.attempt = attempt;
            j.state = state::RUNNING;
        }
    }

    /// Journals a transient-failure requeue. Not fsynced (same argument
    /// as [`append_running`](Self::append_running)).
    pub fn append_requeued(&self, id: JobId, attempt: u32) {
        let mut p = Vec::new();
        p.extend_from_slice(&id.to_le_bytes());
        p.extend_from_slice(&attempt.to_le_bytes());
        let bytes = frame_record(rec::REQUEUED, &p);
        let mut inner = relock(&self.inner);
        let _ = inner.file.write_all(&bytes);
        inner.seg_bytes += bytes.len() as u64;
        if let Some(j) = inner.live.get_mut(&id) {
            j.attempt = attempt;
            j.state = state::QUEUED;
        }
    }

    /// Journals a terminal success. Fsynced *before* the result is
    /// delivered: a client that saw a RESULT frame will never watch the
    /// same job re-run to a different answer after a crash.
    pub fn append_done(&self, id: JobId, outcome: &JobOutcome) {
        let mut p = Vec::new();
        p.extend_from_slice(&id.to_le_bytes());
        p.push(u8::from(outcome.ok));
        put_str(&mut p, &outcome.def);
        put_str(&mut p, &outcome.stats);
        let bytes = frame_record(rec::DONE, &p);
        let mut inner = relock(&self.inner);
        let _ = inner.file.write_all(&bytes);
        let _ = inner.file.sync_data();
        inner.seg_bytes += bytes.len() as u64;
        if let Some(j) = inner.live.get_mut(&id) {
            j.state = state::DONE;
            j.outcome = Some(outcome.clone());
            j.spec = None;
        }
    }

    /// Journals a terminal failure (fsynced, like
    /// [`append_done`](Self::append_done)).
    pub fn append_failed(&self, id: JobId, error: &str) {
        let mut p = Vec::new();
        p.extend_from_slice(&id.to_le_bytes());
        put_str(&mut p, error);
        let bytes = frame_record(rec::FAILED, &p);
        let mut inner = relock(&self.inner);
        let _ = inner.file.write_all(&bytes);
        let _ = inner.file.sync_data();
        inner.seg_bytes += bytes.len() as u64;
        if let Some(j) = inner.live.get_mut(&id) {
            j.state = state::FAILED;
            j.error = Some(error.to_string());
            j.spec = None;
        }
    }

    /// Journals a cancellation (fsynced before the CANCELLED status ack).
    pub fn append_cancelled(&self, id: JobId) {
        let bytes = frame_record(rec::CANCELLED, &id.to_le_bytes());
        let mut inner = relock(&self.inner);
        let _ = inner.file.write_all(&bytes);
        let _ = inner.file.sync_data();
        inner.seg_bytes += bytes.len() as u64;
        inner.live.remove(&id);
    }

    /// Journals a delivery. Not fsynced: losing it re-serves a result
    /// after recovery (idempotent), never re-runs the job.
    pub fn append_delivered(&self, id: JobId) {
        let bytes = frame_record(rec::DELIVERED, &id.to_le_bytes());
        let mut inner = relock(&self.inner);
        let _ = inner.file.write_all(&bytes);
        inner.seg_bytes += bytes.len() as u64;
        let gone = inner.live.get(&id).is_some_and(LiveJob::terminal);
        if gone {
            inner.live.remove(&id);
        }
    }

    /// Rotates + compacts when the current segment exceeds its cap.
    /// Returns `true` when a rotation happened.
    pub fn maybe_rotate(&self) -> bool {
        if relock(&self.inner).seg_bytes < self.segment_bytes {
            return false;
        }
        self.rotate(true).is_ok()
    }

    /// Forces a rotation. `delete_old = false` leaves the superseded
    /// segments on disk — exactly the on-disk state of a crash between a
    /// compaction's fsync and its deletes; the fuzz oracle uses it to
    /// prove replay is idempotent across that window.
    ///
    /// # Errors
    ///
    /// I/O errors writing the new segment (the old segment then remains
    /// the live one).
    pub fn rotate(&self, delete_old: bool) -> io::Result<()> {
        let mut inner = relock(&self.inner);
        let old_seq = inner.seg_seq;
        let new_seq = old_seq + 1;
        let path = seg_path(&self.dir, new_seq);
        let snapshot = snapshot_bytes(&inner.live);
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        file.write_all(&snapshot)?;
        file.sync_data()?;
        sync_dir(&self.dir);
        inner.file = file;
        inner.seg_seq = new_seq;
        inner.seg_bytes = snapshot.len() as u64;
        if delete_old {
            let _ = fs::remove_file(seg_path(&self.dir, old_seq));
            sync_dir(&self.dir);
        }
        if !telemetry::disabled() {
            telemetry::counter("serve.wal.rotations").inc();
        }
        Ok(())
    }

    /// Number of jobs in the in-memory live set (bounded by in-flight
    /// work plus undelivered terminals).
    pub fn live_len(&self) -> usize {
        relock(&self.inner).live.len()
    }
}

fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rlleg-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec(def: &str) -> JobSpec {
        JobSpec {
            def: def.into(),
            ..JobSpec::default()
        }
    }

    fn outcome(def: &str) -> JobOutcome {
        JobOutcome {
            ok: true,
            def: def.into(),
            stats: "{\"legalized\":1}".into(),
        }
    }

    #[test]
    fn accepted_jobs_survive_reopen() {
        let dir = temp_dir("accept");
        {
            let (wal, recovered, _) = Wal::open(&dir, 1 << 20).expect("open");
            assert!(recovered.is_empty());
            wal.append_accepted(1, 111, &spec("DESIGN a ; END"))
                .expect("a");
            wal.append_accepted(2, 222, &spec("DESIGN b ; END"))
                .expect("b");
            wal.append_running(1, 1);
        }
        let (wal, recovered, report) = Wal::open(&dir, 1 << 20).expect("reopen");
        assert_eq!(report.jobs, 2);
        assert_eq!(recovered.len(), 2);
        let a = recovered.iter().find(|j| j.id == 1).expect("job 1");
        assert_eq!(a.accepted_unix_ms, 111);
        assert_eq!(a.attempt, 1);
        assert_eq!(a.state, state::QUEUED, "RUNNING recovers as re-enqueue");
        assert_eq!(a.spec.as_ref().expect("spec").def, "DESIGN a ; END");
        assert_eq!(wal.max_id(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn terminal_undelivered_is_served_delivered_is_forgotten() {
        let dir = temp_dir("terminal");
        {
            let (wal, _, _) = Wal::open(&dir, 1 << 20).expect("open");
            for id in 1..=3u64 {
                wal.append_accepted(id, id * 10, &spec("DESIGN d ; END"))
                    .expect("accept");
                wal.append_running(id, 1);
            }
            wal.append_done(1, &outcome("DESIGN out1 ; END"));
            wal.append_done(2, &outcome("DESIGN out2 ; END"));
            wal.append_delivered(2);
            wal.append_failed(3, "boom");
        }
        let (_, recovered, _) = Wal::open(&dir, 1 << 20).expect("reopen");
        assert_eq!(recovered.len(), 2, "delivered job 2 is forgotten");
        let done = recovered.iter().find(|j| j.id == 1).expect("job 1");
        assert_eq!(done.state, state::DONE);
        assert_eq!(
            done.outcome.as_ref().expect("outcome").def,
            "DESIGN out1 ; END"
        );
        assert!(done.spec.is_none(), "terminal jobs drop their spec");
        let failed = recovered.iter().find(|j| j.id == 3).expect("job 3");
        assert_eq!(failed.state, state::FAILED);
        assert_eq!(failed.error.as_deref(), Some("boom"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_jobs_are_forgotten() {
        let dir = temp_dir("cancel");
        {
            let (wal, _, _) = Wal::open(&dir, 1 << 20).expect("open");
            wal.append_accepted(1, 1, &spec("DESIGN d ; END"))
                .expect("a");
            wal.append_cancelled(1);
        }
        let (_, recovered, _) = Wal::open(&dir, 1 << 20).expect("reopen");
        assert!(recovered.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let dir = temp_dir("torn");
        let path;
        {
            let (wal, _, _) = Wal::open(&dir, 1 << 20).expect("open");
            wal.append_accepted(1, 1, &spec("DESIGN a ; END"))
                .expect("a");
            wal.append_accepted(2, 2, &spec("DESIGN b ; END"))
                .expect("b");
            path = wal.current_segment_path();
        }
        // Cut the final record in half: SIGKILL mid-append.
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate");
        let (_, recovered, report) = Wal::open(&dir, 1 << 20).expect("reopen");
        assert_eq!(report.torn_tail, 1);
        assert_eq!(recovered.len(), 1, "only the fully-synced job survives");
        assert_eq!(recovered[0].id, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_compacts_and_crash_window_replays_identically() {
        let dir = temp_dir("rotate");
        let (wal, _, _) = Wal::open(&dir, 4096).expect("open");
        wal.append_accepted(1, 1, &spec("DESIGN live ; END"))
            .expect("a");
        wal.append_accepted(2, 2, &spec("DESIGN done ; END"))
            .expect("b");
        wal.append_running(2, 1);
        wal.append_done(2, &outcome("DESIGN out ; END"));
        wal.append_delivered(2);
        // Crash window: new compacted segment exists, old one not yet
        // deleted.
        wal.rotate(false).expect("rotate");
        assert!(
            fs::read_dir(&dir).expect("dir").count() >= 2,
            "old segment must still be present"
        );
        drop(wal);
        let (_, recovered, _) = Wal::open(&dir, 4096).expect("reopen with both");
        assert_eq!(recovered.len(), 1, "delivered job stays forgotten");
        assert_eq!(recovered[0].id, 1);
        assert_eq!(
            recovered[0].spec.as_ref().expect("spec").def,
            "DESIGN live ; END"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn maybe_rotate_honors_the_size_cap() {
        let dir = temp_dir("cap");
        let (wal, _, _) = Wal::open(&dir, 4096).expect("open");
        assert!(!wal.maybe_rotate(), "empty journal stays put");
        let big = "X".repeat(2048);
        wal.append_accepted(1, 1, &spec(&big)).expect("a");
        wal.append_done(1, &outcome(&big));
        wal.append_delivered(1);
        assert!(wal.current_segment_len() > 4096);
        assert!(wal.maybe_rotate(), "over-cap segment must rotate");
        assert!(
            wal.current_segment_len() < 100,
            "compaction of an empty live set is near-empty, got {}",
            wal.current_segment_len()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_is_idempotent() {
        let dir = temp_dir("idem");
        {
            let (wal, _, _) = Wal::open(&dir, 1 << 20).expect("open");
            wal.append_accepted(1, 1, &spec("DESIGN a ; END"))
                .expect("a");
            wal.append_accepted(2, 2, &spec("DESIGN b ; END"))
                .expect("b");
            wal.append_running(1, 1);
            wal.append_failed(1, "transient");
        }
        let (_, first, _) = Wal::open(&dir, 1 << 20).expect("first");
        let (_, second, _) = Wal::open(&dir, 1 << 20).expect("second");
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(second.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.state, b.state);
            assert_eq!(a.attempt, b.attempt);
            assert_eq!(
                a.spec.as_ref().map(|s| &s.def),
                b.spec.as_ref().map(|s| &s.def)
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
