//! Readiness polling for the event loop.
//!
//! The server multiplexes every connection on one thread with non-blocking
//! sockets and a `poll(2)` readiness wait. `poll` lives in libc, which the
//! Rust standard library already links, so declaring the symbol directly
//! keeps the workspace's zero-new-dependency rule intact — no `mio`, no
//! `libc` crate. On non-Unix targets a timed-sleep fallback reports every
//! descriptor ready; correctness is preserved because all socket
//! operations are non-blocking (`WouldBlock` is handled everywhere), only
//! idle CPU differs.

use std::time::Duration;

/// What the event loop wants to know about one descriptor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Interest {
    /// Wake when the descriptor is readable (always set for sockets).
    pub readable: bool,
    /// Wake when the descriptor is writable (set while output is queued).
    pub writable: bool,
}

/// What `poll` reported for one descriptor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Readiness {
    /// Data (or a pending accept / EOF) is available.
    pub readable: bool,
    /// The socket can take more output.
    pub writable: bool,
    /// Error/hangup — the connection should be torn down.
    pub error: bool,
}

#[cfg(unix)]
mod sys {
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    /// `EINTR`: 4 on every Unix (POSIX pins the classic errno values).
    pub const EINTR: i32 = 4;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// `nfds_t` is `c_ulong`: pointer-width on every Unix Rust supports
    /// (64-bit on LP64, 32-bit on ILP32 targets like armv7/i686).
    #[cfg(target_pointer_width = "64")]
    pub type NfdsT = u64;
    #[cfg(not(target_pointer_width = "64"))]
    pub type NfdsT = u32;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    }
}

/// Waits up to `timeout` for readiness on `fds` (raw descriptor +
/// interest). Returns one [`Readiness`] per input, index-aligned.
#[cfg(unix)]
pub fn wait(fds: &[(i32, Interest)], timeout: Duration) -> Vec<Readiness> {
    let mut pfds: Vec<sys::PollFd> = fds
        .iter()
        .map(|&(fd, want)| sys::PollFd {
            fd,
            events: if want.readable { sys::POLLIN } else { 0 }
                | if want.writable { sys::POLLOUT } else { 0 },
            revents: 0,
        })
        .collect();
    let deadline = std::time::Instant::now() + timeout;
    // A signal (the kill/restart harness delivers plenty) interrupts
    // poll(2) with EINTR before the timeout; retry with the remaining
    // window instead of reporting a spurious empty tick. Other failures
    // still degrade to "nothing ready" — the loop re-polls immediately,
    // so no readiness is ever lost.
    let rc = loop {
        let timeout_ms = i32::try_from(
            deadline
                .saturating_duration_since(std::time::Instant::now())
                .as_millis(),
        )
        .unwrap_or(i32::MAX)
        .max(0);
        let rc = unsafe { sys::poll(pfds.as_mut_ptr(), pfds.len() as sys::NfdsT, timeout_ms) };
        let interrupted = rc == -1
            && std::io::Error::last_os_error().raw_os_error() == Some(sys::EINTR)
            && timeout_ms > 0;
        if !interrupted {
            break rc;
        }
    };
    if rc <= 0 {
        return vec![Readiness::default(); fds.len()];
    }
    pfds.iter()
        .map(|p| Readiness {
            readable: p.revents & (sys::POLLIN | sys::POLLHUP) != 0,
            writable: p.revents & sys::POLLOUT != 0,
            error: p.revents & (sys::POLLERR | sys::POLLNVAL) != 0,
        })
        .collect()
}

/// Portable fallback: sleep a slice of the timeout and report everything
/// ready; non-blocking socket calls sort out reality.
#[cfg(not(unix))]
pub fn wait(fds: &[(i32, Interest)], timeout: Duration) -> Vec<Readiness> {
    std::thread::sleep(timeout.min(Duration::from_millis(2)));
    fds.iter()
        .map(|&(_, want)| Readiness {
            readable: want.readable,
            writable: want.writable,
            error: false,
        })
        .collect()
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let want = Interest {
            readable: true,
            writable: false,
        };
        // Nothing pending: a short poll reports not-ready.
        let r = wait(&[(listener.as_raw_fd(), want)], Duration::from_millis(1));
        assert!(!r[0].readable);
        let _client = TcpStream::connect(addr).expect("connect");
        let r = wait(
            &[(listener.as_raw_fd(), want)],
            Duration::from_millis(1_000),
        );
        assert!(r[0].readable, "pending accept must wake POLLIN");
    }

    #[test]
    fn stream_reports_write_readiness_and_incoming_data() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        let both = Interest {
            readable: true,
            writable: true,
        };
        let r = wait(
            &[(server_side.as_raw_fd(), both)],
            Duration::from_millis(1_000),
        );
        assert!(r[0].writable, "fresh socket must be writable");
        client.write_all(b"hello").expect("write");
        let r = wait(
            &[(server_side.as_raw_fd(), both)],
            Duration::from_millis(1_000),
        );
        assert!(r[0].readable, "buffered bytes must wake POLLIN");
    }
}
