//! Closed-loop load generator for `BENCH_serve.json`.
//!
//! Drives N concurrent client sessions against a running server, each
//! submitting a stream of small legalization jobs and waiting for the
//! result before submitting the next (closed loop: offered load tracks
//! service rate, and the bounded queue's REJECTED answers measure honest
//! saturation instead of unbounded client-side queueing). Reports
//! throughput, latency percentiles, and the reject rate.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;

use crate::client::{Client, ClientError};
use crate::proto::{reject, JobSpec};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client sessions (connections).
    pub sessions: usize,
    /// Jobs each session submits (closed loop).
    pub jobs_per_session: usize,
    /// The DEF payload every job carries.
    pub def: String,
    /// Per-operation timeout.
    pub timeout: Duration,
    /// Attempts per job before giving up on repeated rejection
    /// (0 = keep retrying until `timeout` elapses for the job).
    pub max_attempts: usize,
}

/// What the run measured (serialized into `BENCH_serve.json`).
#[derive(Debug, Default, Serialize)]
pub struct LoadReport {
    /// Concurrent sessions driven.
    pub sessions: usize,
    /// Jobs that completed with `ok = true`.
    pub jobs_ok: u64,
    /// Jobs that finished with a failure result or client error.
    pub jobs_failed: u64,
    /// REJECTED answers observed (each is one backpressure event).
    pub rejects: u64,
    /// Rejects divided by total submit attempts.
    pub reject_rate: f64,
    /// Wall clock of the whole run in seconds.
    pub wall_seconds: f64,
    /// Completed jobs per second.
    pub qps: f64,
    /// Median submit-to-result latency (ms).
    pub p50_ms: f64,
    /// 95th percentile latency (ms).
    pub p95_ms: f64,
    /// 99th percentile latency (ms).
    pub p99_ms: f64,
}

impl LoadReport {
    /// Pretty JSON for `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".into())
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Runs the closed-loop load against `addr` and aggregates the report.
pub fn run(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let rejects = Arc::new(AtomicU64::new(0));
    let attempts = Arc::new(AtomicU64::new(0));
    let latencies = Arc::new(Mutex::new(Vec::<f64>::new()));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..cfg.sessions.max(1))
        .map(|s| {
            let cfg = cfg.clone();
            let (ok, failed, rejects, attempts, latencies) = (
                Arc::clone(&ok),
                Arc::clone(&failed),
                Arc::clone(&rejects),
                Arc::clone(&attempts),
                Arc::clone(&latencies),
            );
            std::thread::spawn(move || {
                let Ok(mut client) = Client::connect(addr, cfg.timeout) else {
                    failed.fetch_add(cfg.jobs_per_session as u64, Ordering::Relaxed);
                    return;
                };
                let mut session_lat = Vec::with_capacity(cfg.jobs_per_session);
                for j in 0..cfg.jobs_per_session {
                    let spec = JobSpec {
                        seed: (s * 1_000 + j) as u64,
                        def: cfg.def.clone(),
                        ..JobSpec::default()
                    };
                    let jt0 = Instant::now();
                    let deadline = jt0 + cfg.timeout;
                    let mut done = false;
                    let mut attempt = 0usize;
                    loop {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        match client.run(&spec, cfg.timeout) {
                            Ok(r) if r.ok => {
                                ok.fetch_add(1, Ordering::Relaxed);
                                session_lat.push(jt0.elapsed().as_secs_f64() * 1e3);
                                done = true;
                            }
                            Ok(_) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                                done = true;
                            }
                            Err(ClientError::Rejected { code, .. })
                                if code == reject::QUEUE_FULL =>
                            {
                                rejects.fetch_add(1, Ordering::Relaxed);
                                // Honest backoff before re-offering load.
                                std::thread::sleep(Duration::from_millis(2 << attempt.min(5)));
                            }
                            Err(_) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                                done = true;
                            }
                        }
                        attempt += 1;
                        let out_of_attempts = cfg.max_attempts > 0 && attempt >= cfg.max_attempts;
                        if done || out_of_attempts || Instant::now() >= deadline {
                            break;
                        }
                    }
                    if !done {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                latencies
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend(session_lat);
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    let wall = t0.elapsed().as_secs_f64();
    let mut lat = latencies
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let jobs_ok = ok.load(Ordering::Relaxed);
    let total_attempts = attempts.load(Ordering::Relaxed).max(1);
    LoadReport {
        sessions: cfg.sessions,
        jobs_ok,
        jobs_failed: failed.load(Ordering::Relaxed),
        rejects: rejects.load(Ordering::Relaxed),
        reject_rate: rejects.load(Ordering::Relaxed) as f64 / total_attempts as f64,
        wall_seconds: wall,
        qps: jobs_ok as f64 / wall.max(1e-9),
        p50_ms: percentile(&lat, 0.50),
        p95_ms: percentile(&lat, 0.95),
        p99_ms: percentile(&lat, 0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate_sanely() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&v, 0.5) - 50.0).abs() <= 1.0);
        assert!((percentile(&v, 0.99) - 99.0).abs() <= 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
