//! Closed-loop load generator for `BENCH_serve.json`.
//!
//! Drives N concurrent client sessions against a running server, each
//! submitting a stream of small legalization jobs and waiting for the
//! result before submitting the next (closed loop: offered load tracks
//! service rate, and the bounded queue's REJECTED answers measure honest
//! saturation instead of unbounded client-side queueing). Reports
//! throughput, latency percentiles, and the reject rate.
//!
//! Two further phases feed the same report file:
//!
//! - [`run_overload`] over-offers load against a server with a deliberately
//!   tiny admission budget and measures shedding behaviour — latency
//!   percentiles *of the accepted work* must stay ordered and no accepted
//!   job may be lost (`ov_jobs_lost`);
//! - [`run_recovery`] submits a batch, reads back some results, SIGKILLs
//!   the server mid-flight (through a caller-supplied [`RecoveryHarness`]),
//!   restarts it on the same data directory, and audits every acknowledged
//!   job over HTTP: previously-read results must re-fetch bit-identically
//!   (`divergent`), the rest must reach a terminal state (`jobs_lost`).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;

use crate::client::{Backoff, Client, ClientError};
use crate::proto::{reject, JobSpec};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client sessions (connections).
    pub sessions: usize,
    /// Jobs each session submits (closed loop).
    pub jobs_per_session: usize,
    /// The DEF payload every job carries.
    pub def: String,
    /// Per-operation timeout.
    pub timeout: Duration,
    /// Attempts per job before giving up on repeated rejection
    /// (0 = keep retrying until `timeout` elapses for the job).
    pub max_attempts: usize,
}

/// What the run measured (serialized into `BENCH_serve.json`).
#[derive(Debug, Default, Serialize)]
pub struct LoadReport {
    /// Concurrent sessions driven.
    pub sessions: usize,
    /// Jobs that completed with `ok = true`.
    pub jobs_ok: u64,
    /// Jobs that finished with a failure result or client error.
    pub jobs_failed: u64,
    /// REJECTED answers observed (each is one backpressure event).
    pub rejects: u64,
    /// Rejects divided by total submit attempts.
    pub reject_rate: f64,
    /// Wall clock of the whole run in seconds.
    pub wall_seconds: f64,
    /// Completed jobs per second.
    pub qps: f64,
    /// Median submit-to-result latency (ms).
    pub p50_ms: f64,
    /// 95th percentile latency (ms).
    pub p95_ms: f64,
    /// 99th percentile latency (ms).
    pub p99_ms: f64,
}

impl LoadReport {
    /// Pretty JSON for `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".into())
    }
}

/// What the overload phase measured: admission control under an offered
/// load well past the configured in-flight budget.
#[derive(Debug, Default, Serialize)]
pub struct OverloadReport {
    /// Concurrent sessions over-offering load.
    pub ov_sessions: usize,
    /// Accepted submissions.
    pub ov_submitted: u64,
    /// SHED rejections (admission control, with a retry-after hint).
    pub ov_shed: u64,
    /// QUEUE_FULL rejections (the shard hard limit behind admission).
    pub ov_queue_full: u64,
    /// Accepted jobs that returned a terminal result.
    pub ov_completed: u64,
    /// Accepted jobs that never returned a result — the invariant the
    /// bench guard pins to zero: shedding may refuse work, never lose it.
    pub ov_jobs_lost: u64,
    /// Median latency of the *accepted* jobs (ms).
    pub ov_p50_ms: f64,
    /// 95th percentile latency of accepted jobs (ms).
    pub ov_p95_ms: f64,
    /// 99th percentile latency of accepted jobs (ms).
    pub ov_p99_ms: f64,
}

/// What the crash/recovery phase measured.
#[derive(Debug, Default, Serialize)]
pub struct RecoveryReport {
    /// Jobs offered before the kill.
    pub rc_submitted: u64,
    /// Jobs the server acknowledged (ACCEPTED answered) before the kill.
    pub rc_acked: u64,
    /// Results fully read back before the kill.
    pub rc_completed_before_kill: u64,
    /// Pre-kill results that re-fetched bit-identically after restart
    /// (served from the journal, not re-run).
    pub rc_recovered_served: u64,
    /// Acked-but-unread jobs that reached a terminal state after restart.
    pub rc_recovered_rerun: u64,
    /// Acknowledged jobs that vanished or never terminated after restart.
    /// The bench guard pins this to zero.
    pub jobs_lost: u64,
    /// Pre-kill results whose post-restart re-fetch differed — a job that
    /// ran twice to a different answer. Pinned to zero.
    pub divergent: u64,
}

/// The combined three-phase report serialized into `BENCH_serve.json`.
#[derive(Debug, Default, Serialize)]
pub struct ServeBench {
    /// Closed-loop steady-state phase.
    pub closed_loop: LoadReport,
    /// Admission-control overload phase.
    pub overload: OverloadReport,
    /// Kill/restart recovery phase.
    pub recovery: RecoveryReport,
}

impl ServeBench {
    /// Pretty JSON for `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".into())
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Runs the closed-loop load against `addr` and aggregates the report.
pub fn run(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let rejects = Arc::new(AtomicU64::new(0));
    let attempts = Arc::new(AtomicU64::new(0));
    let latencies = Arc::new(Mutex::new(Vec::<f64>::new()));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..cfg.sessions.max(1))
        .map(|s| {
            let cfg = cfg.clone();
            let (ok, failed, rejects, attempts, latencies) = (
                Arc::clone(&ok),
                Arc::clone(&failed),
                Arc::clone(&rejects),
                Arc::clone(&attempts),
                Arc::clone(&latencies),
            );
            std::thread::spawn(move || {
                let Ok(mut client) = Client::connect(addr, cfg.timeout) else {
                    failed.fetch_add(cfg.jobs_per_session as u64, Ordering::Relaxed);
                    return;
                };
                let mut session_lat = Vec::with_capacity(cfg.jobs_per_session);
                for j in 0..cfg.jobs_per_session {
                    let spec = JobSpec {
                        seed: (s * 1_000 + j) as u64,
                        def: cfg.def.clone(),
                        ..JobSpec::default()
                    };
                    let jt0 = Instant::now();
                    let deadline = jt0 + cfg.timeout;
                    let mut done = false;
                    let mut attempt = 0usize;
                    loop {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        match client.run(&spec, cfg.timeout) {
                            Ok(r) if r.ok => {
                                ok.fetch_add(1, Ordering::Relaxed);
                                session_lat.push(jt0.elapsed().as_secs_f64() * 1e3);
                                done = true;
                            }
                            Ok(_) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                                done = true;
                            }
                            Err(ClientError::Rejected { code, .. })
                                if code == reject::QUEUE_FULL =>
                            {
                                rejects.fetch_add(1, Ordering::Relaxed);
                                // Honest backoff before re-offering load.
                                std::thread::sleep(Duration::from_millis(2 << attempt.min(5)));
                            }
                            Err(_) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                                done = true;
                            }
                        }
                        attempt += 1;
                        let out_of_attempts = cfg.max_attempts > 0 && attempt >= cfg.max_attempts;
                        if done || out_of_attempts || Instant::now() >= deadline {
                            break;
                        }
                    }
                    if !done {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                latencies
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend(session_lat);
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    let wall = t0.elapsed().as_secs_f64();
    let mut lat = latencies
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let jobs_ok = ok.load(Ordering::Relaxed);
    let total_attempts = attempts.load(Ordering::Relaxed).max(1);
    LoadReport {
        sessions: cfg.sessions,
        jobs_ok,
        jobs_failed: failed.load(Ordering::Relaxed),
        rejects: rejects.load(Ordering::Relaxed),
        reject_rate: rejects.load(Ordering::Relaxed) as f64 / total_attempts as f64,
        wall_seconds: wall,
        qps: jobs_ok as f64 / wall.max(1e-9),
        p50_ms: percentile(&lat, 0.50),
        p95_ms: percentile(&lat, 0.95),
        p99_ms: percentile(&lat, 0.99),
    }
}

/// Over-offers load against `addr` (whose server should be configured
/// with a small `max_inflight_cost`) and measures how admission control
/// sheds: every session keeps a job in flight, retries sheds with the
/// jittered [`Backoff`], and accounts for accepted work to the end.
pub fn run_overload(addr: SocketAddr, cfg: &LoadConfig) -> OverloadReport {
    let submitted = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let queue_full = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let lost = Arc::new(AtomicU64::new(0));
    let latencies = Arc::new(Mutex::new(Vec::<f64>::new()));
    let workers: Vec<_> = (0..cfg.sessions.max(1))
        .map(|s| {
            let cfg = cfg.clone();
            let (submitted, shed, queue_full, completed, lost, latencies) = (
                Arc::clone(&submitted),
                Arc::clone(&shed),
                Arc::clone(&queue_full),
                Arc::clone(&completed),
                Arc::clone(&lost),
                Arc::clone(&latencies),
            );
            std::thread::spawn(move || {
                let Ok(mut client) = Client::connect(addr, cfg.timeout) else {
                    return;
                };
                let mut backoff = Backoff::for_submit(s as u64 + 1);
                let mut session_lat = Vec::new();
                for j in 0..cfg.jobs_per_session {
                    let spec = JobSpec {
                        seed: (s * 1_000 + j) as u64,
                        def: cfg.def.clone(),
                        ..JobSpec::default()
                    };
                    let jt0 = Instant::now();
                    let deadline = jt0 + cfg.timeout;
                    let job = loop {
                        let left = deadline.saturating_duration_since(Instant::now());
                        if left.is_zero() {
                            break None;
                        }
                        match client.submit(&spec, left) {
                            Ok(job) => break Some(job),
                            Err(ClientError::Rejected { code, reason })
                                if code == reject::SHED || code == reject::QUEUE_FULL =>
                            {
                                if code == reject::SHED {
                                    shed.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    queue_full.fetch_add(1, Ordering::Relaxed);
                                }
                                let delay =
                                    backoff.next_delay(crate::admission::retry_after_hint(&reason));
                                std::thread::sleep(delay.min(left));
                            }
                            Err(_) => break None,
                        }
                    };
                    let Some(job) = job else {
                        continue; // shed to the end: refused, not lost
                    };
                    submitted.fetch_add(1, Ordering::Relaxed);
                    match client.wait_result(job, cfg.timeout) {
                        Ok(_) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            session_lat.push(jt0.elapsed().as_secs_f64() * 1e3);
                        }
                        Err(_) => {
                            // Accepted and then never answered: lost work.
                            lost.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend(session_lat);
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    let mut lat = latencies
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    OverloadReport {
        ov_sessions: cfg.sessions,
        ov_submitted: submitted.load(Ordering::Relaxed),
        ov_shed: shed.load(Ordering::Relaxed),
        ov_queue_full: queue_full.load(Ordering::Relaxed),
        ov_completed: completed.load(Ordering::Relaxed),
        ov_jobs_lost: lost.load(Ordering::Relaxed),
        ov_p50_ms: percentile(&lat, 0.50),
        ov_p95_ms: percentile(&lat, 0.95),
        ov_p99_ms: percentile(&lat, 0.99),
    }
}

/// Process control the recovery phase needs but cannot own: starting a
/// server on the shared data directory and SIGKILLing the running one.
/// The binary supplies closures over a real child process; tests can fake
/// them.
pub struct RecoveryHarness<'a> {
    /// (Re)starts the server over the shared data directory and returns
    /// the address it listens on.
    pub start: &'a mut dyn FnMut() -> SocketAddr,
    /// SIGKILLs the currently running server — no drain, no flush.
    pub kill: &'a mut dyn FnMut(),
}

/// One plain HTTP/1.1 GET (`connection: close`), returning status + body.
fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> Option<(u16, String)> {
    let mut s = TcpStream::connect_timeout(&addr, timeout).ok()?;
    s.set_read_timeout(Some(timeout)).ok()?;
    write!(s, "GET {path} HTTP/1.1\r\nhost: loadgen\r\n\r\n").ok()?;
    read_http_response(&mut s)
}

/// One HTTP/1.1 POST with `body`, returning status + body.
fn http_post(addr: SocketAddr, path: &str, body: &str, timeout: Duration) -> Option<(u16, String)> {
    let mut s = TcpStream::connect_timeout(&addr, timeout).ok()?;
    s.set_read_timeout(Some(timeout)).ok()?;
    write!(
        s,
        "POST {path} HTTP/1.1\r\nhost: loadgen\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .ok()?;
    read_http_response(&mut s)
}

fn read_http_response(s: &mut TcpStream) -> Option<(u16, String)> {
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).ok()?;
    let text = String::from_utf8_lossy(&buf);
    let status: u16 = text
        .lines()
        .next()?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Some((status, body))
}

/// Pulls the job id out of a `{"job":N}` submit answer.
fn job_id_of(body: &str) -> Option<u64> {
    let n = body.split_once("\"job\":")?.1;
    n.split(|c: char| !c.is_ascii_digit())
        .next()
        .filter(|s| !s.is_empty())?
        .parse()
        .ok()
}

/// What the post-restart poll of one job concluded.
enum Polled {
    /// Terminal `done`.
    Done,
    /// Terminal `failed` / `cancelled`.
    FailedOrCancelled,
    /// 404 — the server no longer knows the job.
    Gone,
    /// Never reached a terminal state before the deadline.
    TimedOut,
}

fn poll_terminal(addr: SocketAddr, id: u64, deadline: Instant, timeout: Duration) -> Polled {
    let step = Duration::from_millis(25);
    loop {
        match http_get(addr, &format!("/jobs/{id}"), timeout) {
            Some((200, body)) => {
                if body.contains("\"state\":\"done\"") {
                    return Polled::Done;
                }
                if body.contains("\"state\":\"failed\"") || body.contains("\"state\":\"cancelled\"")
                {
                    return Polled::FailedOrCancelled;
                }
                // queued / running: a recovered job legitimately re-runs.
            }
            Some((404, _)) => return Polled::Gone,
            _ => {}
        }
        if Instant::now() >= deadline {
            return Polled::TimedOut;
        }
        std::thread::sleep(step);
    }
}

/// Runs the kill/restart phase in two cohorts:
///
/// - the **read-back** cohort submits and reads results *before* the kill;
///   after restart each must re-fetch bit-identically or be retired (the
///   delivery was journalled) — anything else is `divergent`;
/// - the **abandoned** cohort submits over HTTP, which acknowledges
///   without subscribing — no delivery can ever retire these jobs, so
///   after the kill the journal owes every one of them: each must reach
///   a terminal state after the restart (served from the persisted
///   result or re-run) — a 404 or a never-terminal job is `jobs_lost`.
pub fn run_recovery(h: &mut RecoveryHarness<'_>, cfg: &LoadConfig) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    let addr = (h.start)();
    let total = (cfg.sessions * cfg.jobs_per_session).clamp(8, 64);
    let read_n = (total / 4).max(2);
    let mut backoff = Backoff::for_submit(1);
    let submit = |client: &mut Client, backoff: &mut Backoff, j: usize| {
        let spec = JobSpec {
            seed: j as u64,
            def: cfg.def.clone(),
            ..JobSpec::default()
        };
        client.submit_with_backoff(&spec, cfg.timeout, backoff).ok()
    };

    // Read-back cohort: results in hand before the kill.
    let mut held: Vec<(u64, String)> = Vec::new();
    if let Ok(mut client) = Client::connect(addr, cfg.timeout) {
        for j in 0..read_n {
            report.rc_submitted += 1;
            let Some(id) = submit(&mut client, &mut backoff, j) else {
                continue;
            };
            report.rc_acked += 1;
            if let Ok(r) = client.wait_result(id, cfg.timeout) {
                held.push((id, r.def));
            }
        }
    }
    report.rc_completed_before_kill = held.len() as u64;

    // Abandoned cohort: acknowledged, never delivered. HTTP submits have
    // no subscription, so nothing can retire these jobs before the server
    // is killed with the work queued, running, or finished-but-undelivered.
    let mut abandoned: Vec<u64> = Vec::new();
    for _ in read_n..total {
        report.rc_submitted += 1;
        let answer = http_post(addr, "/jobs", &cfg.def, cfg.timeout);
        if let Some(id) = answer
            .filter(|(st, _)| *st == 202)
            .and_then(|(_, b)| job_id_of(&b))
        {
            report.rc_acked += 1;
            abandoned.push(id);
        }
    }
    (h.kill)();

    let addr = (h.start)();
    let deadline = Instant::now() + cfg.timeout;
    for (id, def) in &held {
        match poll_terminal(addr, *id, deadline, cfg.timeout) {
            // Retired: the journal recorded the delivery. Nothing owed.
            Polled::Gone => report.rc_recovered_served += 1,
            Polled::Done => {
                if def.is_empty() {
                    report.rc_recovered_served += 1;
                } else {
                    match http_get(addr, &format!("/jobs/{id}/def"), cfg.timeout) {
                        Some((200, body)) if &body == def => report.rc_recovered_served += 1,
                        _ => report.divergent += 1,
                    }
                }
            }
            // We hold a DONE result; any other terminal answer means the
            // job ran again to a different conclusion.
            Polled::FailedOrCancelled => report.divergent += 1,
            Polled::TimedOut => report.jobs_lost += 1,
        }
    }
    for id in &abandoned {
        match poll_terminal(addr, *id, deadline, cfg.timeout) {
            Polled::Done | Polled::FailedOrCancelled => report.rc_recovered_rerun += 1,
            Polled::Gone | Polled::TimedOut => report.jobs_lost += 1,
        }
    }
    (h.kill)();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate_sanely() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&v, 0.5) - 50.0).abs() <= 1.0);
        assert!((percentile(&v, 0.99) - 99.0).abs() <= 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
