//! The serve event loop: one thread multiplexing every connection.
//!
//! Architecture:
//!
//! ```text
//!  clients ──► listener ──► event loop (poll-based, single thread)
//!                               │ SUBMIT → JobTable + ShardedQueue
//!                               │             │ (bounded; Full → REJECTED)
//!                               │             ▼
//!                               │        executor threads (fixed set)
//!                               │             │ inner compute → pool::global()
//!                               │             ▼
//!                               └──◄── progress / results (per-conn cursors)
//! ```
//!
//! The loop never blocks on a socket and never spawns a thread: readiness
//! comes from [`crate::poll::wait`], compute happens on the executor set
//! created at startup. Graceful shutdown closes the queue, lets queued and
//! running jobs finish, streams their results to subscribers, and writes
//! any undelivered result to `data_dir` through
//! [`rlleg_design::fsio::write_atomic`] so nothing a client paid for is
//! lost.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rlleg_design::fsio::write_atomic;

use crate::admission::{self, Admission, Verdict};
use crate::conn::{Conn, Mode};
use crate::exec::{ExecConfig, Executors};
use crate::http;
use crate::job::{state, unix_ms_now, JobId, JobOutcome, JobTable};
use crate::poll::{self, Interest};
use crate::proto::{self, reject, Frame, JobKind, JobSpec, ProtoError};
use crate::queue::{PushError, ShardedQueue};
use crate::wal::Wal;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Executor threads (concurrent jobs in flight). 0 = worker-pool
    /// default ([`rlleg_legalize::pool::default_threads`]).
    pub executors: usize,
    /// Inner solver threads per job when the spec leaves `threads` at 0.
    pub inner_threads: usize,
    /// Queue shards.
    pub shards: usize,
    /// Queued jobs per shard before SUBMITs bounce with QUEUE_FULL.
    pub shard_depth: usize,
    /// Per-frame payload cap (also the HTTP body cap).
    pub max_frame: usize,
    /// Idle window after which a stalled (slow-loris) connection is
    /// reaped. Connections waiting on a subscribed job are exempt.
    pub idle_timeout: Duration,
    /// Poll tick — the latency floor for progress delivery and sweeps.
    pub tick: Duration,
    /// Checkpoint stores and shutdown-drained results live here.
    pub data_dir: PathBuf,
    /// Honor chaos-injection flags in job specs (tests/harness only).
    pub chaos_enabled: bool,
    /// Checkpoint cadence for training jobs (episodes).
    pub ckpt_every: usize,
    /// Accepted connections beyond this are dropped at accept time.
    pub max_conns: usize,
    /// Delivered terminal jobs are evicted from the job table this long
    /// after finishing (late re-queries answer UNKNOWN past it).
    pub terminal_ttl: Duration,
    /// At most this many delivered terminal jobs are retained, oldest
    /// evicted first, so table memory is bounded even under the TTL.
    pub max_terminal: usize,
    /// Write-ahead journal segment size; past it the sweep compacts into
    /// a fresh segment.
    pub wal_segment_bytes: u64,
    /// Admission-control hard watermark: total in-flight cost (cells ×
    /// job-kind weight) above which submissions shed with RETRY_AFTER.
    /// Low-priority (training) work sheds at half of it.
    pub max_inflight_cost: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            executors: 0,
            inner_threads: 0,
            shards: 4,
            shard_depth: 16,
            max_frame: proto::MAX_FRAME,
            idle_timeout: Duration::from_secs(10),
            tick: Duration::from_millis(5),
            data_dir: std::env::temp_dir().join("rlleg-serve"),
            chaos_enabled: false,
            ckpt_every: 2,
            max_conns: 256,
            terminal_ttl: Duration::from_secs(300),
            max_terminal: 1024,
            wal_segment_bytes: 1 << 20,
            // Default: roughly eight concurrent 500k-cell legalizations
            // (or a quarter as many training runs) before shedding.
            max_inflight_cost: 8_000_000,
        }
    }
}

/// Handle over a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    table: Arc<JobTable>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of (queued, running, terminal) job counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        self.table.counts()
    }

    /// Requests a graceful drain and waits for the server to exit:
    /// in-flight jobs finish, their results are delivered or persisted,
    /// then every thread joins.
    pub fn shutdown_graceful(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until the server exits on its own (a client sent SHUTDOWN).
    pub fn wait(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The server. Construct with [`Server::start`]; interact through the
/// returned [`ServerHandle`] and the wire protocols.
pub struct Server;

impl Server {
    /// Binds, spawns the executor set and the event-loop thread, and
    /// returns immediately.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listen address.
    pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        std::fs::create_dir_all(&cfg.data_dir)?;

        let table = Arc::new(JobTable::new());
        let queue = Arc::new(ShardedQueue::<JobId>::new(cfg.shards, cfg.shard_depth));
        let admission = Arc::new(Admission::new(cfg.max_inflight_cost));

        // Replay the write-ahead journal before accepting traffic: every
        // job acknowledged by a previous process either re-enters the
        // queue (training jobs resume from their checkpoint store) or has
        // its persisted result served from the table.
        let (wal, recovered, report) = Wal::open(&cfg.data_dir.join("wal"), cfg.wal_segment_bytes)?;
        let wal = Arc::new(wal);
        if !telemetry::disabled() && report.records > 0 {
            telemetry::counter("serve.wal.replayed_records").add(report.records);
            telemetry::counter("serve.wal.torn_tails").add(report.torn_tail);
            telemetry::counter("serve.wal.corrupt_records").add(report.corrupt);
        }
        for job in recovered {
            let terminal = matches!(job.state, state::DONE | state::FAILED);
            if terminal {
                // Persisted-but-undelivered result: serve it to whoever
                // still holds the id; never re-run it.
                table.insert_recovered(
                    job.id,
                    JobSpec::default(),
                    job.state,
                    job.outcome,
                    job.error,
                    job.attempt,
                    job.accepted_unix_ms,
                    0,
                );
                if !telemetry::disabled() {
                    telemetry::counter("serve.wal.recovered_results").inc();
                }
            } else if let Some(spec) = job.spec {
                let cost = admission::cost_of(&spec);
                admission.charge(cost);
                table.insert_recovered(
                    job.id,
                    spec,
                    state::QUEUED,
                    None,
                    None,
                    job.attempt,
                    job.accepted_unix_ms,
                    cost,
                );
                if queue.push(job.id, job.id).is_err() {
                    // More recovered work than shard capacity: park the
                    // overflow; the sweep re-enqueues it as slots free up.
                    table.schedule_retry(job.id, Instant::now());
                }
                if !telemetry::disabled() {
                    telemetry::counter("serve.wal.recovered_requeued").inc();
                }
            }
        }

        let executors = {
            let n = if cfg.executors == 0 {
                rlleg_legalize::pool::default_threads()
            } else {
                cfg.executors
            };
            Executors::spawn(
                n,
                ExecConfig {
                    inner_threads: cfg.inner_threads,
                    data_dir: cfg.data_dir.clone(),
                    chaos_enabled: cfg.chaos_enabled,
                    ckpt_every: cfg.ckpt_every,
                },
                Arc::clone(&queue),
                Arc::clone(&table),
                Arc::clone(&wal),
                Arc::clone(&admission),
            )
        };

        let stop = Arc::new(AtomicBool::new(false));
        let mut loop_state = EventLoop {
            cfg,
            listener,
            conns: Vec::new(),
            table: Arc::clone(&table),
            queue,
            stop: Arc::clone(&stop),
            draining: false,
            wal,
            admission,
        };
        let thread = std::thread::Builder::new()
            .name("rlleg-serve-loop".into())
            .spawn(move || {
                loop_state.run();
                loop_state.drain(executors);
            })?;
        Ok(ServerHandle {
            addr,
            stop,
            table,
            thread: Some(thread),
        })
    }
}

struct EventLoop {
    cfg: ServeConfig,
    listener: TcpListener,
    conns: Vec<Conn>,
    table: Arc<JobTable>,
    queue: Arc<ShardedQueue<JobId>>,
    stop: Arc<AtomicBool>,
    draining: bool,
    wal: Arc<Wal>,
    admission: Arc<Admission>,
}

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(s: &T) -> i32 {
    s.as_raw_fd()
}
#[cfg(not(unix))]
fn raw_fd<T>(_s: &T) -> i32 {
    0
}

impl EventLoop {
    /// Runs until a drain is requested *and* all work has been delivered.
    fn run(&mut self) {
        loop {
            if !self.draining && self.stop.load(Ordering::Acquire) {
                self.begin_drain();
            }
            let ready = self.poll_once();
            self.accept_ready(ready[0].readable);
            self.service_conns(&ready[1..]);
            self.deliver();
            self.sweep(Instant::now());
            if !telemetry::disabled() {
                telemetry::gauge("serve.conns").set(self.conns.len() as i64);
                telemetry::gauge("serve.queue_depth").set(self.queue.len() as i64);
            }
            if self.draining && self.drained() {
                return;
            }
        }
    }

    fn poll_once(&mut self) -> Vec<poll::Readiness> {
        let mut fds = Vec::with_capacity(1 + self.conns.len());
        fds.push((
            raw_fd(&self.listener),
            Interest {
                readable: !self.draining,
                writable: false,
            },
        ));
        for c in &self.conns {
            fds.push((
                raw_fd(&c.stream),
                Interest {
                    readable: true,
                    writable: !c.outbuf.is_empty(),
                },
            ));
        }
        poll::wait(&fds, self.cfg.tick)
    }

    fn accept_ready(&mut self, listener_ready: bool) {
        if !listener_ready || self.draining {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.cfg.max_conns {
                        if !telemetry::disabled() {
                            telemetry::counter("serve.conns.over_capacity").inc();
                        }
                        drop(stream);
                        continue;
                    }
                    if let Ok(conn) = Conn::new(stream) {
                        if !telemetry::disabled() {
                            telemetry::counter("serve.conns.accepted").inc();
                        }
                        self.conns.push(conn);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Reads, parses, and answers every ready connection; removes dead
    /// ones. `ready` is index-aligned with `self.conns`.
    fn service_conns(&mut self, ready: &[poll::Readiness]) {
        let mut alive = Vec::with_capacity(self.conns.len());
        for (i, mut conn) in std::mem::take(&mut self.conns).into_iter().enumerate() {
            let r = ready.get(i).copied().unwrap_or_default();
            let mut ok = !r.error;
            if ok && r.readable {
                // Buffer cap: one max frame plus framing slack.
                ok = conn.fill(self.cfg.max_frame + proto::HEADER_LEN + 4096);
            }
            if ok {
                ok = self.parse_and_handle(&mut conn);
            }
            if ok && (r.writable || !conn.outbuf.is_empty()) {
                ok = conn.flush();
            }
            if ok && !conn.done() {
                alive.push(conn);
            } else if !telemetry::disabled() {
                telemetry::counter("serve.conns.closed").inc();
            }
        }
        self.conns = alive;
    }

    /// Parses whatever is buffered on `conn` and queues responses.
    /// Returns `false` to tear the connection down.
    fn parse_and_handle(&mut self, conn: &mut Conn) -> bool {
        if !conn.sniff() {
            return false;
        }
        match conn.mode {
            Mode::Unknown => true,
            Mode::Binary => self.handle_binary(conn),
            Mode::Http => self.handle_http(conn),
        }
    }

    fn handle_binary(&mut self, conn: &mut Conn) -> bool {
        loop {
            match proto::decode_frame(&conn.inbuf, self.cfg.max_frame) {
                Ok((frame, consumed)) => {
                    conn.inbuf.drain(..consumed);
                    self.handle_frame(conn, frame);
                }
                Err(e) if e.is_truncated() => return true,
                Err(ProtoError::Oversized { declared, cap }) => {
                    conn.send(&proto::encode_frame(&Frame::Rejected {
                        code: reject::OVERSIZED,
                        reason: format!("frame of {declared} B exceeds cap of {cap} B"),
                    }));
                    conn.close_after_flush = true;
                    return true;
                }
                Err(e) => {
                    conn.send(&proto::encode_frame(&Frame::Error {
                        message: format!("protocol error: {e}"),
                    }));
                    conn.close_after_flush = true;
                    return true;
                }
            }
        }
    }

    fn handle_frame(&mut self, conn: &mut Conn, frame: Frame) {
        match frame {
            Frame::Submit(spec) => match self.submit(spec) {
                Ok(id) => {
                    conn.subscriptions.insert(id, 0);
                    conn.send(&proto::encode_frame(&Frame::Accepted { job: id }));
                }
                Err((code, reason)) => {
                    conn.send(&proto::encode_frame(&Frame::Rejected { code, reason }));
                }
            },
            Frame::Query(job) => {
                conn.send(&proto::encode_frame(&Frame::Status {
                    job,
                    state: self.table.state_of(job),
                }));
                if let Some(result) = self.terminal_result(job) {
                    conn.subscriptions.remove(&job);
                    conn.send(&proto::encode_frame(&result));
                }
            }
            Frame::Cancel(job) => {
                // Cancellation is logical only: the id stays queued (no
                // popper/cancel race on the shard counts) and the executor
                // that pops it discards it when its claim fails.
                if self.table.cancel(job) {
                    // Journalled (fsynced) before the CANCELLED ack below,
                    // so a restart never re-runs a job the client was told
                    // was cancelled.
                    self.wal.append_cancelled(job);
                    self.admission.release(self.table.cost_of(job));
                }
                conn.subscriptions.remove(&job);
                conn.send(&proto::encode_frame(&Frame::Status {
                    job,
                    state: self.table.state_of(job),
                }));
            }
            Frame::Ping => conn.send(&proto::encode_frame(&Frame::Pong)),
            Frame::Shutdown => {
                self.begin_drain();
                conn.send(&proto::encode_frame(&Frame::Pong));
            }
            // Server-to-client frames arriving at the server are a
            // protocol violation.
            _ => {
                conn.send(&proto::encode_frame(&Frame::Error {
                    message: "unexpected server-role frame".into(),
                }));
                conn.close_after_flush = true;
            }
        }
    }

    /// Shared submission path for both dialects. Order matters: the
    /// admission check sheds first (cheapest), then the journal append
    /// (fsynced) makes the job durable, and only then does the id go to
    /// the queue and back to the client — an acknowledged id is always a
    /// journalled one.
    fn submit(&mut self, spec: JobSpec) -> Result<JobId, (u16, String)> {
        if self.draining {
            return Err((reject::DRAINING, "server is draining".into()));
        }
        if spec.def.is_empty() {
            return Err((reject::BAD_REQUEST, "empty DEF payload".into()));
        }
        let cost = admission::cost_of(&spec);
        match self
            .admission
            .admit(cost, admission::low_priority(spec.kind))
        {
            Verdict::Admit => {}
            Verdict::Shed { retry_after_ms } => {
                if !telemetry::disabled() {
                    telemetry::counter("serve.jobs.shed").inc();
                }
                return Err((
                    reject::SHED,
                    format!("overloaded, shedding: retry_after_ms={retry_after_ms}"),
                ));
            }
        }
        let accepted_unix_ms = unix_ms_now();
        let id = self.table.insert_with(spec, cost, accepted_unix_ms);
        let journalled = self
            .table
            .with(id, |e| {
                self.wal.append_accepted(id, accepted_unix_ms, &e.spec)
            })
            .unwrap_or(Ok(()));
        if let Err(e) = journalled {
            // Un-journalled acks are lies; reject instead.
            self.table.remove(id);
            self.admission.release(cost);
            if !telemetry::disabled() {
                telemetry::counter("serve.wal.append_failed").inc();
            }
            return Err((reject::BAD_REQUEST, format!("journal write failed: {e}")));
        }
        match self.queue.push(id, id) {
            Ok(()) => {
                if !telemetry::disabled() {
                    telemetry::counter("serve.jobs.accepted").inc();
                }
                Ok(id)
            }
            Err(e) => {
                // The id never reached the client nor the queue; journal
                // the cancellation and drop the entry outright instead of
                // leaving a tombstone behind.
                self.wal.append_cancelled(id);
                self.table.remove(id);
                self.admission.release(cost);
                if !telemetry::disabled() {
                    telemetry::counter("serve.jobs.rejected").inc();
                }
                match e {
                    PushError::Full => Err((
                        reject::QUEUE_FULL,
                        format!("queue shard full (capacity {})", self.queue.capacity()),
                    )),
                    PushError::Closed => Err((reject::DRAINING, "server is draining".into())),
                }
            }
        }
    }

    /// The RESULT frame for a terminal job, marking it delivered (in the
    /// table and the journal — a delivered result is not re-served after
    /// a restart).
    fn terminal_result(&self, job: JobId) -> Option<Frame> {
        let frame = self.table.with(job, |e| match e.state {
            state::DONE => {
                e.delivered = true;
                let o = e.outcome.clone().unwrap_or(JobOutcome {
                    ok: false,
                    def: String::new(),
                    stats: "{}".into(),
                });
                Some(Frame::Result {
                    job,
                    ok: o.ok,
                    def: o.def,
                    stats: o.stats,
                })
            }
            state::FAILED => {
                e.delivered = true;
                Some(Frame::Result {
                    job,
                    ok: false,
                    def: String::new(),
                    stats: format!("{{\"error\":{:?}}}", e.error.clone().unwrap_or_default()),
                })
            }
            state::CANCELLED => {
                e.delivered = true;
                Some(Frame::Result {
                    job,
                    ok: false,
                    def: String::new(),
                    stats: "{\"cancelled\":true}".into(),
                })
            }
            _ => None,
        })?;
        if frame.is_some() {
            self.wal.append_delivered(job);
        }
        frame
    }

    /// Streams new progress lines and terminal results to subscribers.
    fn deliver(&mut self) {
        let mut conns = std::mem::take(&mut self.conns);
        for conn in &mut conns {
            let jobs: Vec<JobId> = conn.subscriptions.keys().copied().collect();
            for job in jobs {
                let cursor = conn.subscriptions[&job];
                let (chunk, new_cursor) = self
                    .table
                    .with(job, |e| {
                        if cursor < e.progress.len() {
                            (e.progress[cursor..].join(""), e.progress.len())
                        } else {
                            (String::new(), cursor)
                        }
                    })
                    .unwrap_or((String::new(), cursor));
                if !chunk.is_empty() {
                    conn.subscriptions.insert(job, new_cursor);
                    conn.send(&proto::encode_frame(&Frame::Progress { job, chunk }));
                }
                if let Some(result) = self.terminal_result(job) {
                    conn.subscriptions.remove(&job);
                    conn.send(&proto::encode_frame(&result));
                }
            }
        }
        self.conns = conns;
    }

    /// Reaps stalled (slow-loris) connections and evicts delivered
    /// terminal jobs past the retention TTL/cap, keeping table memory
    /// bounded on a long-running server.
    fn sweep(&mut self, now: Instant) {
        let idle = self.cfg.idle_timeout;
        let before = self.conns.len();
        self.conns.retain(|c| !c.is_stalled(now, idle));
        let reaped = before - self.conns.len();
        if reaped > 0 && !telemetry::disabled() {
            telemetry::counter("serve.conns.reaped").add(reaped as u64);
        }
        let evicted = self
            .table
            .reap_terminal(now, self.cfg.terminal_ttl, self.cfg.max_terminal);
        if evicted > 0 && !telemetry::disabled() {
            telemetry::counter("serve.jobs.evicted").add(evicted as u64);
        }
        // Backed-off retries whose stamps expired go back into the shard
        // queue; while draining they fail instead (the queue is closed
        // and nothing would ever run them).
        if self.draining {
            for id in self.table.pending_retries() {
                self.wal.append_failed(id, "server draining before retry");
                self.table.fail(id, "server draining before retry".into());
                self.admission.release(self.table.cost_of(id));
            }
        } else {
            for id in self.table.take_due_retries(now) {
                if self.queue.push(id, id).is_err() {
                    // Shards full right now: park it a little longer.
                    self.table
                        .schedule_retry(id, now + Duration::from_millis(50));
                }
            }
        }
        // Compact the journal once the live segment outgrows its cap.
        self.wal.maybe_rotate();
    }

    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        // Pending jobs still drain after close(); new pushes bounce.
        self.queue.close();
        if !telemetry::disabled() {
            telemetry::counter("serve.drain.begun").inc();
        }
    }

    /// Drain is complete once no work is queued or running and every
    /// result reached its subscriber (or the subscriber left).
    fn drained(&self) -> bool {
        if !self.queue.is_empty() || self.table.running() > 0 {
            return false;
        }
        self.conns
            .iter()
            .all(|c| c.subscriptions.is_empty() && c.outbuf.is_empty())
    }

    /// Post-loop teardown: persist undelivered results, flush, join.
    fn drain(&mut self, executors: Executors) {
        for id in self.table.undelivered_terminal() {
            let Some((def, stats)) = self.table.with(id, |e| {
                e.delivered = true;
                let o = e.outcome.clone();
                (
                    o.as_ref().map(|o| o.def.clone()).unwrap_or_default(),
                    o.map(|o| o.stats).unwrap_or_else(|| {
                        format!("{{\"error\":{:?}}}", e.error.clone().unwrap_or_default())
                    }),
                )
            }) else {
                continue;
            };
            if !def.is_empty() {
                let _ = write_atomic(
                    &self.cfg.data_dir.join(format!("job-{id}.def")),
                    def.as_bytes(),
                );
            }
            let _ = write_atomic(
                &self.cfg.data_dir.join(format!("job-{id}.stats.json")),
                stats.as_bytes(),
            );
            // The atomic persist above is the delivery; journal it so a
            // restart does not serve (or re-run) the job again.
            self.wal.append_delivered(id);
        }
        // Best-effort flush of anything still buffered, bounded in time.
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline && self.conns.iter().any(|c| !c.outbuf.is_empty()) {
            for c in &mut self.conns {
                let _ = c.flush();
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.conns.clear();
        executors.join();
        if !telemetry::disabled() {
            telemetry::counter("serve.drain.completed").inc();
        }
    }

    /// Routes one parsed HTTP request; always `Connection: close`.
    fn handle_http(&mut self, conn: &mut Conn) -> bool {
        match http::try_parse(&conn.inbuf, self.cfg.max_frame) {
            Ok(None) => true,
            Ok(Some((req, consumed))) => {
                conn.inbuf.drain(..consumed);
                let response = self.route_http(&req);
                conn.send(&response);
                conn.close_after_flush = true;
                true
            }
            Err(http::HttpError::TooLarge { declared }) => {
                conn.send(&http::json_error(
                    413,
                    &format!("body of {declared} B exceeds cap"),
                ));
                conn.close_after_flush = true;
                true
            }
            Err(http::HttpError::BadRequest(msg)) => {
                conn.send(&http::json_error(400, &msg));
                conn.close_after_flush = true;
                true
            }
        }
    }

    fn route_http(&mut self, req: &http::HttpRequest) -> Vec<u8> {
        match (req.method.as_str(), req.path()) {
            ("GET", "/healthz") => {
                let (q, r, t) = self.table.counts();
                http::response(
                    200,
                    "application/json",
                    format!(
                        "{{\"ok\":true,\"draining\":{},\"queued\":{q},\"running\":{r},\"terminal\":{t}}}",
                        self.draining
                    )
                    .as_bytes(),
                )
            }
            ("GET", "/metrics") => http::response(
                200,
                "application/json",
                telemetry::snapshot().to_json().as_bytes(),
            ),
            ("POST", "/jobs") => self.http_submit(req),
            ("GET", path) if path.starts_with("/jobs/") => self.http_job(path),
            _ => http::json_error(404, "no such route"),
        }
    }

    fn http_submit(&mut self, req: &http::HttpRequest) -> Vec<u8> {
        let spec = match http_spec(req) {
            Ok(spec) => spec,
            Err(msg) => return http::json_error(400, &msg),
        };
        match self.submit(spec) {
            Ok(id) => http::response(
                202,
                "application/json",
                format!("{{\"job\":{id}}}").as_bytes(),
            ),
            Err((code, reason)) => {
                let status = match code {
                    reject::QUEUE_FULL | reject::SHED => 429,
                    reject::DRAINING => 503,
                    reject::OVERSIZED => 413,
                    _ => 400,
                };
                // Shed rejections carry a machine-readable wait hint;
                // surface it in the standard header (rounded up to whole
                // seconds, minimum 1 — Retry-After has no sub-second
                // form).
                match admission::retry_after_hint(&reason) {
                    Some(ms) => {
                        http::json_error_retry_after(status, &reason, ms.div_ceil(1000).max(1))
                    }
                    None => http::json_error(status, &reason),
                }
            }
        }
    }

    fn http_job(&mut self, path: &str) -> Vec<u8> {
        let rest = &path["/jobs/".len()..];
        let (id_str, want_def) = match rest.strip_suffix("/def") {
            Some(id) => (id, true),
            None => (rest, false),
        };
        let Ok(id) = id_str.parse::<JobId>() else {
            return http::json_error(400, "bad job id");
        };
        let st = self.table.state_of(id);
        if st == state::UNKNOWN {
            return http::json_error(404, "no such job");
        }
        if want_def {
            let def = self
                .table
                .with(id, |e| {
                    let d = e.outcome.as_ref().map(|o| o.def.clone());
                    if d.as_ref().is_some_and(|d| !d.is_empty()) {
                        // Serving the result DEF is the delivery.
                        e.delivered = true;
                    }
                    d
                })
                .flatten();
            return match def {
                Some(d) if !d.is_empty() => {
                    self.wal.append_delivered(id);
                    http::response(200, "text/plain", d.as_bytes())
                }
                _ => http::json_error(404, "result not available"),
            };
        }
        let (stats, error) = self
            .table
            .with(id, |e| {
                if matches!(e.state, state::FAILED | state::CANCELLED) {
                    // No DEF will ever exist; the status answer is the
                    // whole result. DONE stays undelivered until the def
                    // itself is fetched (or shutdown persists it).
                    e.delivered = true;
                }
                (e.outcome.as_ref().map(|o| o.stats.clone()), e.error.clone())
            })
            .unwrap_or((None, None));
        if matches!(st, state::FAILED | state::CANCELLED) {
            self.wal.append_delivered(id);
        }
        let state_name = match st {
            state::QUEUED => "queued",
            state::RUNNING => "running",
            state::DONE => "done",
            state::FAILED => "failed",
            state::CANCELLED => "cancelled",
            _ => "unknown",
        };
        let mut body = format!("{{\"job\":{id},\"state\":\"{state_name}\"");
        if let Some(s) = stats {
            body.push_str(&format!(",\"stats\":{s}"));
        }
        if let Some(e) = error {
            body.push_str(&format!(",\"error\":{e:?}"));
        }
        body.push('}');
        http::response(200, "application/json", body.as_bytes())
    }
}

/// A numeric query parameter, validated to fit `T` — the HTTP dialect is
/// exactly as strict as the binary decoder, rejecting instead of silently
/// truncating (`threads=257` is an error, not thread count 1).
fn http_param<T: TryFrom<u64>>(
    req: &http::HttpRequest,
    key: &str,
    default: T,
) -> Result<T, String> {
    match req.query(key) {
        None => Ok(default),
        Some(v) => v
            .parse::<u64>()
            .ok()
            .and_then(|n| T::try_from(n).ok())
            .ok_or_else(|| format!("parameter {key}={v:?} is out of range")),
    }
}

/// Builds a [`JobSpec`] from an HTTP submit request, enforcing the same
/// value ranges as [`proto::decode_frame`]'s spec decoder.
fn http_spec(req: &http::HttpRequest) -> Result<JobSpec, String> {
    let def =
        String::from_utf8(req.body.clone()).map_err(|_| "DEF body must be UTF-8".to_string())?;
    let tech: u8 = http_param(req, "tech", 0)?;
    if tech > 1 {
        return Err(format!("unknown technology {tech}"));
    }
    Ok(JobSpec {
        kind: match req.query("kind") {
            None | Some("legalize") => JobKind::Legalize,
            Some("rl") => JobKind::RlLegalize,
            Some("train") => JobKind::Train,
            Some("gplace") => JobKind::Gplace,
            Some(other) => return Err(format!("unknown kind {other:?}")),
        },
        tech,
        ordering: match req.query("ordering") {
            None | Some("size") => 0,
            Some("x") => 1,
            Some("random") => 2,
            Some(other) => return Err(format!("unknown ordering {other:?}")),
        },
        threads: http_param(req, "threads", 0)?,
        hidden: http_param(req, "hidden", 16)?,
        episodes: http_param(req, "episodes", 1)?,
        seed: http_param(req, "seed", 0)?,
        max_steps: http_param(req, "max_steps", 0)?,
        max_wall_ms: http_param(req, "max_wall_ms", 0)?,
        job_key: http_param(req, "key", 0)?,
        def,
        ..JobSpec::default()
    })
}
