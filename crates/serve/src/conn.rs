//! Per-connection state for the event loop.
//!
//! A connection starts in [`Mode::Unknown`]; the first buffered bytes pick
//! the dialect — the binary frame magic selects [`Mode::Binary`], an HTTP
//! method selects [`Mode::Http`], anything else is torn down. Both
//! dialects share one port and one loop.
//!
//! All sockets are non-blocking; the connection owns an input buffer fed
//! by readable events and an output buffer drained by writable events.
//! `last_progress` timestamps the last *byte-level* progress in either
//! direction — the slow-loris sweep uses it to reap clients that neither
//! finish a request nor read their responses, while clients legitimately
//! waiting on a subscribed job stay untouched.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::job::JobId;

/// Which dialect the peer speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Not enough bytes buffered to tell yet.
    Unknown,
    /// The CRC-framed binary protocol.
    Binary,
    /// The minimal HTTP/1.1 adapter.
    Http,
}

/// One accepted client connection.
pub struct Conn {
    /// The non-blocking socket.
    pub stream: TcpStream,
    /// Bytes read but not yet consumed by a parser.
    pub inbuf: Vec<u8>,
    /// Bytes queued for the peer.
    pub outbuf: Vec<u8>,
    /// Sniffed dialect.
    pub mode: Mode,
    /// Last moment any byte moved on this connection.
    pub last_progress: Instant,
    /// Jobs this connection submitted (binary mode): progress cursor into
    /// `JobEntry::progress` per job; results stream back automatically.
    pub subscriptions: HashMap<JobId, usize>,
    /// Close once `outbuf` has drained (HTTP responses, protocol errors).
    pub close_after_flush: bool,
    /// The peer closed its half; no more input will arrive.
    pub peer_gone: bool,
}

impl Conn {
    /// Wraps a freshly-accepted socket (sets it non-blocking).
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            mode: Mode::Unknown,
            last_progress: Instant::now(),
            subscriptions: HashMap::new(),
            close_after_flush: false,
            peer_gone: false,
        })
    }

    /// Sniffs the dialect once at least a few bytes are buffered.
    /// Returns `false` when the prefix is neither dialect (tear down).
    pub fn sniff(&mut self) -> bool {
        if self.mode != Mode::Unknown || self.inbuf.len() < 4 {
            return true;
        }
        if self.inbuf[..4] == crate::proto::MAGIC {
            self.mode = Mode::Binary;
        } else if crate::http::looks_like_http(&self.inbuf) {
            self.mode = Mode::Http;
        } else {
            return false;
        }
        true
    }

    /// Drains the socket into `inbuf` until `WouldBlock`. Returns `false`
    /// when the connection errored (tear down). EOF sets `peer_gone`.
    pub fn fill(&mut self, max_buffer: usize) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if self.inbuf.len() >= max_buffer {
                // A peer that outruns the parser cap is a protocol error
                // (frames and HTTP bodies are size-capped below this).
                return false;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_gone = true;
                    return true;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    self.last_progress = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Writes queued output until `WouldBlock` or empty. Returns `false`
    /// when the connection errored (tear down).
    pub fn flush(&mut self) -> bool {
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => return false,
                Ok(n) => {
                    self.outbuf.drain(..n);
                    self.last_progress = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    /// Queues bytes for the peer.
    pub fn send(&mut self, bytes: &[u8]) {
        self.outbuf.extend_from_slice(bytes);
    }

    /// `true` once this connection is finished and can be dropped. A peer
    /// that closed its socket can never read a result, so its
    /// subscriptions die with it — pending outcomes stay undelivered and
    /// are persisted by the graceful drain instead of being "delivered"
    /// into a dead socket.
    pub fn done(&self) -> bool {
        (self.close_after_flush && self.outbuf.is_empty()) || self.peer_gone
    }

    /// `true` when the connection is mid-request with nothing to wait for
    /// but the peer — the shape a slow-loris attack leaves behind.
    pub fn is_stalled(&self, now: Instant, idle: std::time::Duration) -> bool {
        if now.duration_since(self.last_progress) < idle {
            return false;
        }
        // Waiting on a subscribed job is legitimate idleness; so is a
        // binary session sitting between requests with clean buffers.
        let waiting_on_job = !self.subscriptions.is_empty();
        let mid_request = !self.inbuf.is_empty() || self.mode == Mode::Unknown;
        let unread_output = !self.outbuf.is_empty();
        !waiting_on_job && (mid_request || unread_output || self.mode == Mode::Http)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (Conn, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        (Conn::new(server_side).expect("conn"), client)
    }

    #[test]
    fn sniffs_binary_and_http_and_rejects_garbage() {
        let (mut c, _k) = pair();
        c.inbuf = crate::proto::MAGIC.to_vec();
        assert!(c.sniff());
        assert_eq!(c.mode, Mode::Binary);

        let (mut c, _k) = pair();
        c.inbuf = b"GET / HTTP/1.1".to_vec();
        assert!(c.sniff());
        assert_eq!(c.mode, Mode::Http);

        let (mut c, _k) = pair();
        c.inbuf = b"\xff\xff\xff\xff".to_vec();
        assert!(!c.sniff(), "garbage prefix must tear down");

        let (mut c, _k) = pair();
        c.inbuf = b"GE".to_vec();
        assert!(c.sniff(), "short prefix: keep waiting");
        assert_eq!(c.mode, Mode::Unknown);
    }

    #[test]
    fn fill_and_flush_move_bytes() {
        let (mut c, mut client) = pair();
        client.write_all(b"RLSF").expect("write");
        // Give the kernel a moment on loopback.
        std::thread::sleep(Duration::from_millis(20));
        assert!(c.fill(1024));
        assert_eq!(c.inbuf, b"RLSF");
        c.send(b"pong");
        assert!(c.flush());
        let mut got = [0u8; 4];
        client.read_exact(&mut got).expect("read");
        assert_eq!(&got, b"pong");
    }

    #[test]
    fn fill_detects_eof() {
        let (mut c, client) = pair();
        drop(client);
        std::thread::sleep(Duration::from_millis(20));
        assert!(c.fill(1024));
        assert!(c.peer_gone);
        assert!(c.done());
    }

    #[test]
    fn stall_detection_spares_subscribers() {
        let (mut c, _k) = pair();
        c.mode = Mode::Binary;
        c.last_progress = Instant::now() - Duration::from_secs(60);
        // Clean binary session between requests: not stalled.
        assert!(!c.is_stalled(Instant::now(), Duration::from_secs(5)));
        // Half a frame buffered and silent: stalled (slow loris).
        c.inbuf = b"RL".to_vec();
        assert!(c.is_stalled(Instant::now(), Duration::from_secs(5)));
        // Same, but waiting on a job it submitted: spared.
        c.subscriptions.insert(1, 0);
        assert!(!c.is_stalled(Instant::now(), Duration::from_secs(5)));
    }

    #[test]
    fn over_cap_input_tears_down() {
        let (mut c, mut client) = pair();
        client.write_all(&[0u8; 64]).expect("write");
        std::thread::sleep(Duration::from_millis(20));
        c.inbuf = vec![0u8; 32];
        assert!(!c.fill(16), "inbuf past the cap must tear down");
    }
}
