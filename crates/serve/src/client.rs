//! A small blocking client for the binary protocol.
//!
//! Used by the integration tests, the `--smoke` self-check, and the load
//! generator. One [`Client`] is one connection: submit, then stream
//! progress and the terminal result. The socket carries a read timeout so
//! a wedged server turns into an error instead of a hung test.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::proto::{encode_frame, Frame, FrameReader, JobSpec, MAX_FRAME};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered, but not with what the call expected.
    Unexpected(String),
    /// The server refused the request (REJECTED frame).
    Rejected {
        /// Code from [`crate::proto::reject`].
        code: u16,
        /// Human-readable reason.
        reason: String,
    },
    /// No qualifying frame arrived within the deadline.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Unexpected(m) => write!(f, "unexpected reply: {m}"),
            ClientError::Rejected { code, reason } => {
                write!(f, "rejected (code {code}): {reason}")
            }
            ClientError::Timeout => write!(f, "timed out waiting for the server"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A finished job as seen by the client.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Job id.
    pub job: u64,
    /// `true` when the server reported a fully-legal / converged result.
    pub ok: bool,
    /// Result DEF (model JSON for training jobs; empty on failure).
    pub def: String,
    /// JSON stats object.
    pub stats: String,
    /// Progress JSONL collected while waiting.
    pub progress: String,
}

/// One blocking protocol connection.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    /// Job traffic that interleaved with another call's reply (the server
    /// streams progress for every submitted job on this connection);
    /// consumed by the next [`wait_result`](Self::wait_result).
    pending: std::collections::VecDeque<Frame>,
}

impl Client {
    /// Connects with `timeout` applied to the connect and every read.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout.min(Duration::from_millis(100))))?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            reader: FrameReader::new(),
            pending: std::collections::VecDeque::new(),
        })
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        self.stream.write_all(&encode_frame(frame))?;
        Ok(())
    }

    /// Blocks until the next frame or `deadline`.
    fn recv(&mut self, deadline: Instant) -> Result<Frame, ClientError> {
        loop {
            match self.reader.next_frame(MAX_FRAME) {
                Ok(Some(frame)) => return Ok(frame),
                Ok(None) => {}
                Err(e) => return Err(ClientError::Unexpected(format!("bad frame: {e}"))),
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Unexpected(
                        "server closed the connection".into(),
                    ))
                }
                Ok(n) => self.reader.push(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Submits a job; returns its id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] carries the server's backpressure code.
    pub fn submit(&mut self, spec: &JobSpec, timeout: Duration) -> Result<u64, ClientError> {
        self.send(&Frame::Submit(spec.clone()))?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.recv(deadline)? {
                Frame::Accepted { job } => return Ok(job),
                Frame::Rejected { code, reason } => {
                    return Err(ClientError::Rejected { code, reason })
                }
                Frame::Pong => {}
                // Traffic for jobs already in flight on this connection.
                f @ (Frame::Progress { .. } | Frame::Result { .. } | Frame::Status { .. }) => {
                    self.pending.push_back(f)
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Waits for the RESULT frame of `job`, collecting progress chunks.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when the result does not arrive in time.
    pub fn wait_result(&mut self, job: u64, timeout: Duration) -> Result<JobResult, ClientError> {
        let deadline = Instant::now() + timeout;
        let mut progress = String::new();
        // First consume anything stashed for this job by an earlier call.
        let mut i = 0;
        while i < self.pending.len() {
            let ours = matches!(
                &self.pending[i],
                Frame::Progress { job: j, .. } | Frame::Result { job: j, .. } if *j == job
            );
            if !ours {
                i += 1;
                continue;
            }
            match self.pending.remove(i) {
                Some(Frame::Progress { chunk, .. }) => progress.push_str(&chunk),
                Some(Frame::Result { ok, def, stats, .. }) => {
                    return Ok(JobResult {
                        job,
                        ok,
                        def,
                        stats,
                        progress,
                    })
                }
                _ => unreachable!("matched variant above"),
            }
        }
        loop {
            match self.recv(deadline)? {
                Frame::Progress { job: j, chunk } if j == job => progress.push_str(&chunk),
                Frame::Result {
                    job: j,
                    ok,
                    def,
                    stats,
                } if j == job => {
                    return Ok(JobResult {
                        job,
                        ok,
                        def,
                        stats,
                        progress,
                    })
                }
                Frame::Pong => {}
                // Another job's traffic: keep it for its own waiter.
                f @ (Frame::Progress { .. } | Frame::Result { .. } | Frame::Status { .. }) => {
                    self.pending.push_back(f)
                }
                Frame::Error { message } => {
                    return Err(ClientError::Unexpected(format!("server error: {message}")))
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Submit-and-wait in one call.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit) and [`wait_result`](Self::wait_result).
    pub fn run(&mut self, spec: &JobSpec, timeout: Duration) -> Result<JobResult, ClientError> {
        let job = self.submit(spec, timeout)?;
        self.wait_result(job, timeout)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Timeout or an unexpected reply.
    pub fn ping(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.send(&Frame::Ping)?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.recv(deadline)? {
                Frame::Pong => return Ok(()),
                // Late progress/results from earlier jobs may interleave.
                f @ (Frame::Progress { .. } | Frame::Result { .. } | Frame::Status { .. }) => {
                    self.pending.push_back(f)
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Asks for a job's state code.
    ///
    /// # Errors
    ///
    /// Timeout or an unexpected reply.
    pub fn query(&mut self, job: u64, timeout: Duration) -> Result<u8, ClientError> {
        self.send(&Frame::Query(job))?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.recv(deadline)? {
                Frame::Status { job: j, state } if j == job => return Ok(state),
                Frame::Pong => {}
                f @ (Frame::Progress { .. } | Frame::Result { .. } | Frame::Status { .. }) => {
                    self.pending.push_back(f)
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Cancels a queued job; returns the job's state after the attempt
    /// (CANCELLED on success, the current state when it already started).
    ///
    /// # Errors
    ///
    /// Timeout or an unexpected reply.
    pub fn cancel(&mut self, job: u64, timeout: Duration) -> Result<u8, ClientError> {
        self.send(&Frame::Cancel(job))?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.recv(deadline)? {
                Frame::Status { job: j, state } if j == job => return Ok(state),
                Frame::Pong => {}
                f @ (Frame::Progress { .. } | Frame::Result { .. } | Frame::Status { .. }) => {
                    self.pending.push_back(f)
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Requests a graceful server drain.
    ///
    /// # Errors
    ///
    /// Socket errors only; the acknowledging PONG is not awaited.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Frame::Shutdown)
    }
}
