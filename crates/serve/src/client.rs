//! A small blocking client for the binary protocol.
//!
//! Used by the integration tests, the `--smoke` self-check, and the load
//! generator. One [`Client`] is one connection: submit, then stream
//! progress and the terminal result. The socket carries a read timeout so
//! a wedged server turns into an error instead of a hung test.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::admission::retry_after_hint;
use crate::proto::{encode_frame, reject, Frame, FrameReader, JobSpec, MAX_FRAME};

/// Capped exponential backoff with deterministic jitter for retrying
/// `QUEUE_FULL`/`SHED` rejections.
///
/// The schedule is `base × 2^attempt`, capped, with ±25% jitter drawn
/// from a splitmix64 stream seeded at construction — deterministic for a
/// given seed (tests pin it) while different clients, seeded differently,
/// decorrelate instead of retrying in lockstep and re-creating the very
/// overload spike that shed them.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
    rng_state: u64,
}

impl Backoff {
    /// A schedule starting at `base_ms`, doubling, capped at `cap_ms`.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        Self {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(base_ms.max(1)),
            attempt: 0,
            rng_state: seed,
        }
    }

    /// The default submit schedule: 10ms → 1.28s, cap 2s.
    pub fn for_submit(seed: u64) -> Self {
        Self::new(10, 2000, seed)
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: tiny, seedable, plenty for jitter.
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next delay: exponential-capped with ±25% jitter, or exactly
    /// the server's `retry_after_ms` hint when one was given (the server
    /// already sized it to the overload).
    pub fn next_delay(&mut self, hinted_ms: Option<u64>) -> Duration {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << self.attempt.min(20))
            .min(self.cap_ms);
        self.attempt += 1;
        let ms = match hinted_ms {
            Some(h) => h,
            None => {
                // Jitter in [-25%, +25%] of the exponential step.
                let span = (exp / 2).max(1);
                exp - exp / 4 + self.next_u64() % span
            }
        };
        Duration::from_millis(ms.min(self.cap_ms))
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered, but not with what the call expected.
    Unexpected(String),
    /// The server refused the request (REJECTED frame).
    Rejected {
        /// Code from [`crate::proto::reject`].
        code: u16,
        /// Human-readable reason.
        reason: String,
    },
    /// No qualifying frame arrived within the deadline.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Unexpected(m) => write!(f, "unexpected reply: {m}"),
            ClientError::Rejected { code, reason } => {
                write!(f, "rejected (code {code}): {reason}")
            }
            ClientError::Timeout => write!(f, "timed out waiting for the server"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A finished job as seen by the client.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Job id.
    pub job: u64,
    /// `true` when the server reported a fully-legal / converged result.
    pub ok: bool,
    /// Result DEF (model JSON for training jobs; empty on failure).
    pub def: String,
    /// JSON stats object.
    pub stats: String,
    /// Progress JSONL collected while waiting.
    pub progress: String,
}

/// One blocking protocol connection.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    /// Job traffic that interleaved with another call's reply (the server
    /// streams progress for every submitted job on this connection);
    /// consumed by the next [`wait_result`](Self::wait_result).
    pending: std::collections::VecDeque<Frame>,
}

impl Client {
    /// Connects with `timeout` applied to the connect and every read.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout.min(Duration::from_millis(100))))?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            reader: FrameReader::new(),
            pending: std::collections::VecDeque::new(),
        })
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        self.stream.write_all(&encode_frame(frame))?;
        Ok(())
    }

    /// Blocks until the next frame or `deadline`.
    fn recv(&mut self, deadline: Instant) -> Result<Frame, ClientError> {
        loop {
            match self.reader.next_frame(MAX_FRAME) {
                Ok(Some(frame)) => return Ok(frame),
                Ok(None) => {}
                Err(e) => return Err(ClientError::Unexpected(format!("bad frame: {e}"))),
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Unexpected(
                        "server closed the connection".into(),
                    ))
                }
                Ok(n) => self.reader.push(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Submits a job; returns its id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] carries the server's backpressure code.
    pub fn submit(&mut self, spec: &JobSpec, timeout: Duration) -> Result<u64, ClientError> {
        self.send(&Frame::Submit(spec.clone()))?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.recv(deadline)? {
                Frame::Accepted { job } => return Ok(job),
                Frame::Rejected { code, reason } => {
                    return Err(ClientError::Rejected { code, reason })
                }
                Frame::Pong => {}
                // Traffic for jobs already in flight on this connection.
                f @ (Frame::Progress { .. } | Frame::Result { .. } | Frame::Status { .. }) => {
                    self.pending.push_back(f)
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Waits for the RESULT frame of `job`, collecting progress chunks.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when the result does not arrive in time.
    pub fn wait_result(&mut self, job: u64, timeout: Duration) -> Result<JobResult, ClientError> {
        let deadline = Instant::now() + timeout;
        let mut progress = String::new();
        // First consume anything stashed for this job by an earlier call.
        let mut i = 0;
        while i < self.pending.len() {
            let ours = matches!(
                &self.pending[i],
                Frame::Progress { job: j, .. } | Frame::Result { job: j, .. } if *j == job
            );
            if !ours {
                i += 1;
                continue;
            }
            match self.pending.remove(i) {
                Some(Frame::Progress { chunk, .. }) => progress.push_str(&chunk),
                Some(Frame::Result { ok, def, stats, .. }) => {
                    return Ok(JobResult {
                        job,
                        ok,
                        def,
                        stats,
                        progress,
                    })
                }
                _ => unreachable!("matched variant above"),
            }
        }
        loop {
            match self.recv(deadline)? {
                Frame::Progress { job: j, chunk } if j == job => progress.push_str(&chunk),
                Frame::Result {
                    job: j,
                    ok,
                    def,
                    stats,
                } if j == job => {
                    return Ok(JobResult {
                        job,
                        ok,
                        def,
                        stats,
                        progress,
                    })
                }
                Frame::Pong => {}
                // Another job's traffic: keep it for its own waiter.
                f @ (Frame::Progress { .. } | Frame::Result { .. } | Frame::Status { .. }) => {
                    self.pending.push_back(f)
                }
                Frame::Error { message } => {
                    return Err(ClientError::Unexpected(format!("server error: {message}")))
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// [`submit`](Self::submit) with retry: `QUEUE_FULL` and `SHED`
    /// rejections back off (honoring the server's `retry_after_ms` hint
    /// when it sent one) and retry until the deadline; other rejections
    /// surface immediately.
    ///
    /// # Errors
    ///
    /// The final rejection when the deadline expires before an
    /// acceptance; non-backpressure errors immediately.
    pub fn submit_with_backoff(
        &mut self,
        spec: &JobSpec,
        timeout: Duration,
        backoff: &mut Backoff,
    ) -> Result<u64, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ClientError::Timeout);
            }
            match self.submit(spec, left) {
                Err(ClientError::Rejected { code, reason })
                    if code == reject::QUEUE_FULL || code == reject::SHED =>
                {
                    let delay = backoff.next_delay(retry_after_hint(&reason));
                    if Instant::now() + delay >= deadline {
                        return Err(ClientError::Rejected { code, reason });
                    }
                    std::thread::sleep(delay);
                }
                other => return other,
            }
        }
    }

    /// Submit-and-wait in one call.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit) and [`wait_result`](Self::wait_result).
    pub fn run(&mut self, spec: &JobSpec, timeout: Duration) -> Result<JobResult, ClientError> {
        let job = self.submit(spec, timeout)?;
        self.wait_result(job, timeout)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Timeout or an unexpected reply.
    pub fn ping(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.send(&Frame::Ping)?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.recv(deadline)? {
                Frame::Pong => return Ok(()),
                // Late progress/results from earlier jobs may interleave.
                f @ (Frame::Progress { .. } | Frame::Result { .. } | Frame::Status { .. }) => {
                    self.pending.push_back(f)
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Asks for a job's state code.
    ///
    /// # Errors
    ///
    /// Timeout or an unexpected reply.
    pub fn query(&mut self, job: u64, timeout: Duration) -> Result<u8, ClientError> {
        self.send(&Frame::Query(job))?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.recv(deadline)? {
                Frame::Status { job: j, state } if j == job => return Ok(state),
                Frame::Pong => {}
                f @ (Frame::Progress { .. } | Frame::Result { .. } | Frame::Status { .. }) => {
                    self.pending.push_back(f)
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Cancels a queued job; returns the job's state after the attempt
    /// (CANCELLED on success, the current state when it already started).
    ///
    /// # Errors
    ///
    /// Timeout or an unexpected reply.
    pub fn cancel(&mut self, job: u64, timeout: Duration) -> Result<u8, ClientError> {
        self.send(&Frame::Cancel(job))?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.recv(deadline)? {
                Frame::Status { job: j, state } if j == job => return Ok(state),
                Frame::Pong => {}
                f @ (Frame::Progress { .. } | Frame::Result { .. } | Frame::Status { .. }) => {
                    self.pending.push_back(f)
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Requests a graceful server drain.
    ///
    /// # Errors
    ///
    /// Socket errors only; the acknowledging PONG is not awaited.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Frame::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_pinned_for_a_fixed_seed() {
        // The exact schedule for seed 42 (base 10ms, cap 2s). Pinned so
        // an accidental change to the jitter formula or rng shows up as
        // a test diff, not as a fleet-wide retry-storm surprise.
        let mut b = Backoff::for_submit(42);
        let got: Vec<u64> = (0..9)
            .map(|_| b.next_delay(None).as_millis() as u64)
            .collect();
        assert_eq!(got, vec![11, 16, 48, 64, 170, 342, 765, 1508, 1505]);
        assert_eq!(b.attempts(), 9);
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_decorrelated_across_seeds() {
        let mut a = Backoff::for_submit(7);
        let mut b = Backoff::for_submit(7);
        let mut c = Backoff::for_submit(8);
        let sa: Vec<_> = (0..6).map(|_| a.next_delay(None)).collect();
        let sb: Vec<_> = (0..6).map(|_| b.next_delay(None)).collect();
        let sc: Vec<_> = (0..6).map(|_| c.next_delay(None)).collect();
        assert_eq!(sa, sb, "same seed, same schedule");
        assert_ne!(sa, sc, "different seeds must not retry in lockstep");
    }

    #[test]
    fn backoff_stays_in_the_jitter_band_and_caps() {
        for seed in 0..32 {
            let mut b = Backoff::new(10, 2000, seed);
            for attempt in 0..12u32 {
                let exp = (10u64 << attempt.min(20)).min(2000);
                let d = b.next_delay(None).as_millis() as u64;
                assert!(
                    d >= exp - exp / 4 && d <= exp + exp / 4 + 1,
                    "seed {seed} attempt {attempt}: {d}ms outside ±25% of {exp}ms"
                );
                assert!(d <= 2000, "cap violated: {d}");
            }
        }
    }

    #[test]
    fn server_hint_overrides_the_exponential_step() {
        let mut b = Backoff::for_submit(1);
        assert_eq!(b.next_delay(Some(777)), Duration::from_millis(777));
        // The hint still counts as an attempt and is still capped.
        assert_eq!(b.attempts(), 1);
        assert_eq!(b.next_delay(Some(99_999)), Duration::from_millis(2000));
    }
}
