//! Synthetic benchmark generation for the RL-Legalizer reproduction.
//!
//! The paper trains and tests on the ICCAD-2017 contest benchmarks and on
//! OpenCores designs implemented in Nangate 45 nm — neither of which is
//! redistributable here. This crate regenerates *statistically equivalent*
//! designs from the published per-row characteristics (Tables II–III):
//!
//! - [`spec`] — one [`BenchmarkSpec`] per table row (cell count, area,
//!   density, fences/macros/edge rules by family), with uniform scaling for
//!   laptop-sized runs,
//! - [`generate`] — builds the full [`Design`](rlleg_design::Design):
//!   mixed-height cell population, macros, fence regions, a locality-aware
//!   netlist, and
//! - [`placement`] — a global-placement substrate (net-centroid attraction
//!   plus bin density spreading) producing the overlapping off-grid
//!   positions legalization starts from.
//!
//! # Example
//!
//! ```
//! use rlleg_benchgen::{generate, find_spec};
//!
//! let spec = find_spec("usb_phy").expect("table row").scaled(0.5);
//! let design = generate(&spec);
//! assert_eq!(design.num_movable(), spec.num_cells);
//! ```

#![warn(missing_docs)]

mod generate;
pub mod placement;
pub mod spec;

pub use generate::generate;
pub use spec::{find_spec, parse_cells, test_suite, training_suite, BenchmarkSpec, Family};
