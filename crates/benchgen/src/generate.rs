//! The synthetic design generator.
//!
//! Given a [`BenchmarkSpec`], [`generate`] builds a full [`Design`] whose
//! statistics match the published row: cell count, mixed-height mix, core
//! area/density, macros, fence regions, edge types, and a netlist with
//! global-placement locality. See DESIGN.md §3 for the substitution
//! rationale.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use rlleg_design::{CellId, Design, DesignBuilder, EdgeType, RailParity};
use rlleg_geom::{Dbu, Point, Rect};

use crate::placement::{clamp_into_bounds, refine, RefineConfig};
use crate::spec::BenchmarkSpec;

/// Samples a cell width in sites: the mix matches Fig. 1's observation that
/// ~30 %+ of cells share the dominant size.
fn sample_width(rng: &mut impl Rng) -> i64 {
    match rng.gen_range(0..100) {
        0..=37 => 1,
        38..=72 => 2,
        73..=89 => 3,
        _ => 4,
    }
}

/// Samples a cell height in rows given the multi-height ratio.
fn sample_height(rng: &mut impl Rng, multi_ratio: f64) -> u8 {
    if rng.gen_bool(multi_ratio) {
        match rng.gen_range(0..100) {
            0..=59 => 2,
            60..=84 => 3,
            _ => 4,
        }
    } else {
        1
    }
}

/// Generates a full synthetic design from `spec`.
///
/// The same spec (same seed) always yields the identical design.
pub fn generate(spec: &BenchmarkSpec) -> Design {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let tech = spec.technology();
    let sw = tech.site_width;
    let rh = tech.row_height;

    // 1. Sample the cell list, then size the core so density comes out
    //    right: placeable = movable_area / density, core = placeable +
    //    macro area.
    let dims: Vec<(i64, u8)> = (0..spec.num_cells)
        .map(|_| {
            (
                sample_width(&mut rng),
                sample_height(&mut rng, spec.multi_height_ratio),
            )
        })
        .collect();
    let movable_area: f64 = dims
        .iter()
        .map(|&(w, h)| (w * sw * i64::from(h) * rh) as f64)
        .sum();
    let core_area = movable_area / spec.density / (1.0 - spec.macro_area_frac).max(0.05);
    let side = core_area.sqrt();
    // Rows have a floor (mixed-height cells need vertical room); the width
    // then absorbs the rounding so the core area — and with it the spec's
    // density — is preserved even at tiny scales.
    let rows = ((side / rh as f64).round() as i64).max(8);
    let sites_x = ((core_area / (rows * rh) as f64 / sw as f64).round() as i64).max(8);
    // Million-cell presets must fail loudly, not clamp: the pixel grid
    // addresses site×row as one flat index, so the product has to stay
    // inside u32 (a 1M-cell contest die is ~1e8 pixels, comfortably under).
    assert!(
        rows.checked_mul(sites_x)
            .is_some_and(|px| px < i64::from(u32::MAX)),
        "{} rows x {} sites overflows the u32 pixel index space",
        rows,
        sites_x
    );

    let mut b = DesignBuilder::new(spec.name.clone(), tech.clone(), sites_x, rows);
    if let Some(mr) = spec.max_disp_rows {
        b.max_displacement(mr * rh);
    }

    // 2. Macros: random, aligned, pairwise non-overlapping.
    let core = Rect::new(0, 0, sites_x * sw, rows * rh);
    let mut macros: Vec<Rect> = Vec::new();
    let target_macro_area = spec.macro_area_frac * core.area() as f64;
    let mut macro_area = 0.0;
    let mut attempts = 0;
    // Macro footprints are capped in absolute terms: real macros do not
    // grow with die area, and a die-proportional macro makes the contest
    // 120-row max-displacement constraint infeasible for the cells that
    // must escape it (a cell starting mid-macro needs ~half the macro
    // height of vertical displacement; observed failing from ~300k cells
    // up). Small dies are below the caps, so their designs are unchanged.
    let w_hi = (sites_x / 6).clamp(3, 512);
    let h_hi = (rows / 6).clamp(3, 64);
    let w_lo = (sites_x / 14).clamp(2, (w_hi / 2).max(2));
    let h_lo = (rows / 14).clamp(2, (h_hi / 2).max(2));
    while macro_area < target_macro_area && attempts < 4_000 {
        attempts += 1;
        let w_sites = rng.gen_range(w_lo..=w_hi);
        let h_rows = rng.gen_range(h_lo..=h_hi);
        if w_sites >= sites_x || h_rows >= rows {
            continue;
        }
        let site = rng.gen_range(0..=(sites_x - w_sites));
        let row = rng.gen_range(0..=(rows - h_rows));
        let r = Rect::new(
            site * sw,
            row * rh,
            (site + w_sites) * sw,
            (row + h_rows) * rh,
        );
        // One pixel of margin keeps corridors placeable.
        if macros.iter().any(|m| m.inflated(sw.max(rh)).overlaps(&r)) {
            continue;
        }
        // Fixed cells share the Cell type, whose height is capped at the
        // max cell height; taller macros are emitted as stacked row-bands.
        let first_band = h_rows.min(i64::from(tech.max_height_rows));
        b.add_fixed_cell(
            format!("macro{}", macros.len()),
            w_sites,
            first_band as u8,
            Point::new(r.lo.x, r.lo.y),
        );
        let mut placed = first_band;
        let mut band = 1;
        while placed < h_rows {
            let this = (h_rows - placed).min(i64::from(tech.max_height_rows));
            b.add_fixed_cell(
                format!("macro{}_b{band}", macros.len()),
                w_sites,
                this as u8,
                Point::new(r.lo.x, r.lo.y + placed * rh),
            );
            placed += this;
            band += 1;
        }
        macro_area += r.area() as f64;
        macros.push(r);
    }

    // 3. Fence regions: aligned rectangles, ~10 % of the core each,
    //    disjoint from one another.
    let mut fences: Vec<Rect> = Vec::new();
    let mut fence_ids = Vec::new();
    attempts = 0;
    while fences.len() < spec.num_fences && attempts < 2_000 {
        attempts += 1;
        let w_sites = rng.gen_range((sites_x / 6).max(4)..=(sites_x / 3).max(5));
        let h_rows = rng.gen_range((rows / 6).max(4)..=(rows / 3).max(5));
        if w_sites >= sites_x || h_rows >= rows {
            continue;
        }
        let site = rng.gen_range(0..=(sites_x - w_sites));
        let row = rng.gen_range(0..=(rows - h_rows));
        let r = Rect::new(
            site * sw,
            row * rh,
            (site + w_sites) * sw,
            (row + h_rows) * rh,
        );
        if fences.iter().any(|f| f.inflated(sw).overlaps(&r)) {
            continue;
        }
        let id = b.add_region(format!("fence_{}", fences.len()), vec![r]);
        fence_ids.push(id);
        fences.push(r);
    }

    // Fence capacity: cap fenced-cell area at ~80 % of each region's
    // placeable (macro-free) area so every fence stays legalizable.
    let fence_capacity: Vec<f64> = fences
        .iter()
        .map(|f| {
            let blocked: i64 = macros.iter().map(|m| m.overlap_area(f)).sum();
            ((f.area() - blocked).max(0)) as f64 * spec.density.min(0.8)
        })
        .collect();
    let mut fence_fill = vec![0.0f64; fences.len()];

    // 4. Cells, allocated bin-by-bin in snake order so netlist index
    //    locality becomes spatial locality with uniform density.
    let bins_per_axis = ((spec.num_cells as f64 / 20.0).sqrt().ceil() as i64).max(1);
    let bw = (core.width() / bins_per_axis).max(1);
    let bh = (core.height() / bins_per_axis).max(1);
    let mut bin_order = Vec::new();
    for by in 0..bins_per_axis {
        let xs: Vec<i64> = if by % 2 == 0 {
            (0..bins_per_axis).collect()
        } else {
            (0..bins_per_axis).rev().collect()
        };
        for bx in xs {
            bin_order.push((bx, by));
        }
    }
    let bin_rect = |bx: i64, by: i64| {
        Rect::new(
            core.lo.x + bx * bw,
            core.lo.y + by * bh,
            (core.lo.x + (bx + 1) * bw).min(core.hi.x),
            (core.lo.y + (by + 1) * bh).min(core.hi.y),
        )
    };
    let capacity_of = |r: &Rect| {
        let blocked: i64 = macros.iter().map(|m| m.overlap_area(r)).sum();
        ((r.area() - blocked).max(0)) as f64 * spec.density
    };

    let mut cells: Vec<CellId> = Vec::with_capacity(spec.num_cells);
    let mut bin_iter = bin_order.iter().cycle();
    let mut current = *bin_iter.next().expect("bins");
    let mut current_rect = bin_rect(current.0, current.1);
    let mut current_fill = 0.0;
    let mut current_cap = capacity_of(&current_rect);
    for (i, &(w, h)) in dims.iter().enumerate() {
        let area = (w * sw * i64::from(h) * rh) as f64;
        // Advance to the next bin once this one is at capacity (skipping
        // fully blocked bins).
        let mut guard = 0;
        while current_fill + area > current_cap && guard < bin_order.len() * 2 {
            current = *bin_iter.next().expect("bins");
            current_rect = bin_rect(current.0, current.1);
            current_cap = capacity_of(&current_rect);
            current_fill = 0.0;
            guard += 1;
        }
        current_fill += area;
        // Random position inside the bin, biased away from macros.
        let (cw, ch) = (w * sw, i64::from(h) * rh);
        let mut pos = Point::new(current_rect.lo.x, current_rect.lo.y);
        for _ in 0..12 {
            let x =
                rng.gen_range(current_rect.lo.x..=(current_rect.hi.x - cw).max(current_rect.lo.x));
            let y =
                rng.gen_range(current_rect.lo.y..=(current_rect.hi.y - ch).max(current_rect.lo.y));
            pos = Point::new(x, y);
            let r = Rect::with_size(pos, cw, ch);
            if !macros.iter().any(|m| m.overlaps(&r)) {
                break;
            }
        }
        let id = b.add_cell(format!("u{i}"), w, h, pos);
        if spec.edge_types {
            let roll = rng.gen_range(0..100);
            if roll < 15 {
                b.set_edges(id, EdgeType(1), EdgeType(1));
            } else if roll < 23 {
                b.set_edges(id, EdgeType(2), EdgeType(2));
            }
        }
        // Fence membership: cells whose centre lands inside a fence belong
        // to it, as long as the fence has capacity left (fences must stay
        // legalizable: macros inside the rect eat placeable area).
        let r = Rect::with_size(pos, cw, ch);
        let centre = r.center();
        let mut fence = fences.iter().position(|f| f.contains_point(centre));
        if let Some(fi) = fence {
            let cap = fence_capacity[fi];
            if fence_fill[fi] + (cw * ch) as f64 <= cap {
                fence_fill[fi] += (cw * ch) as f64;
                b.assign_region(id, fence_ids[fi]);
            } else {
                fence = None;
            }
        }
        if h % 2 == 0 {
            // Pick a rail parity that has at least one feasible start row —
            // inside the cell's fence when it has one, anywhere otherwise.
            let (lo_row, hi_row) = match fence {
                Some(fi) => (fences[fi].lo.y / rh, fences[fi].hi.y / rh),
                None => (0, rows),
            };
            let feasible = |parity: RailParity| {
                (lo_row..=(hi_row - i64::from(h)).max(lo_row)).any(|row| parity.allows_row(row))
            };
            let pick = if rng.gen_bool(0.5) {
                RailParity::Even
            } else {
                RailParity::Odd
            };
            let other = if pick == RailParity::Even {
                RailParity::Odd
            } else {
                RailParity::Even
            };
            b.set_rail(id, if feasible(pick) { pick } else { other });
        }
        cells.push(id);
    }

    // 5. Netlist with index locality (index ≈ space after snake
    //    allocation): ~1.15 nets per cell, degrees 2-6, a few global nets
    //    and boundary IO pins.
    let n = cells.len();
    let num_nets = (n as f64 * 1.15) as usize;
    let window = (n / 80).max(12);
    for ni in 0..num_nets {
        let degree = match rng.gen_range(0..100) {
            0..=54 => 2,
            55..=74 => 3,
            75..=89 => 4,
            90..=96 => 5,
            _ => 6,
        };
        let seed_idx = rng.gen_range(0..n);
        let mut members = vec![seed_idx];
        let mut guard = 0;
        while members.len() < degree && guard < 40 {
            guard += 1;
            let lo = seed_idx.saturating_sub(window);
            let hi = (seed_idx + window).min(n - 1);
            let m = rng.gen_range(lo..=hi);
            if !members.contains(&m) {
                members.push(m);
            }
        }
        if rng.gen_range(0..100) < 8 {
            let far = rng.gen_range(0..n);
            if !members.contains(&far) {
                members.push(far);
            }
        }
        let pins: Vec<(CellId, Dbu, Dbu)> = members
            .into_iter()
            .map(|m| {
                let id = cells[m];
                (
                    id,
                    rng.gen_range(0..=dims[m].0 * sw),
                    rng.gen_range(0..=rh / 2),
                )
            })
            .collect();
        if rng.gen_range(0..100) < 2 {
            let io = Point::new(
                if rng.gen_bool(0.5) {
                    core.lo.x
                } else {
                    core.hi.x
                },
                rng.gen_range(core.lo.y..core.hi.y),
            );
            b.add_net_with_fixed(format!("n{ni}"), pins, vec![io]);
        } else {
            b.add_net(format!("n{ni}"), pins);
        }
    }

    let mut design = b.build();

    // 6. Global-placement realism: jitter to create overlap, then a few
    //    rounds of wirelength attraction + density spreading.
    let jx = 3 * sw;
    let jy = rh;
    for id in design.cell_ids().collect::<Vec<_>>() {
        if design.cell(id).is_movable() {
            let c = design.cell_mut(id);
            c.pos = c
                .pos
                .translated(rng.gen_range(-jx..=jx), rng.gen_range(-jy..=jy));
        }
    }
    clamp_into_bounds(&mut design);
    refine(&mut design, RefineConfig::default(), &mut rng);
    design
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{find_spec, Family};

    fn small_contest() -> BenchmarkSpec {
        find_spec("des_perf_a_md1").expect("exists").scaled(0.004)
    }

    fn small_opencores() -> BenchmarkSpec {
        find_spec("jpeg_encoder").expect("exists").scaled(0.01)
    }

    #[test]
    fn determinism() {
        let spec = small_contest();
        let a = generate(&spec);
        let c = generate(&spec);
        assert_eq!(a.num_cells(), c.num_cells());
        for (x, y) in a.cells.iter().zip(c.cells.iter()) {
            assert_eq!(x.gp_pos, y.gp_pos);
            assert_eq!(x.width, y.width);
        }
    }

    #[test]
    fn density_close_to_spec() {
        let spec = small_opencores();
        let d = generate(&spec);
        assert_eq!(d.num_movable(), spec.num_cells);
        let density = d.density();
        assert!(
            (density - spec.density).abs() < 0.12,
            "density {density} vs spec {}",
            spec.density
        );
    }

    #[test]
    fn contest_designs_have_structure() {
        let spec = small_contest();
        let d = generate(&spec);
        assert!(d.fixed_ids().count() > 0, "macros present");
        assert_eq!(d.regions.len(), spec.num_fences);
        assert!(
            d.cells.iter().any(|c| c.region.is_some()),
            "some cells are fenced"
        );
        assert!(
            d.cells.iter().any(|c| c.edge_left.0 != 0),
            "edge types assigned"
        );
        assert!(d.max_displacement.is_some());
        // Fenced cells actually start inside their region.
        let rh = d.tech.row_height;
        for c in d.cells.iter().filter(|c| c.region.is_some()) {
            let reg = d.region(c.region.expect("fenced"));
            assert!(
                reg.contains(&c.rect(rh)),
                "fenced cell at {} outside fence",
                c.pos
            );
        }
    }

    #[test]
    fn opencores_designs_are_plain() {
        let spec = small_opencores();
        assert_eq!(spec.family, Family::OpenCores);
        let d = generate(&spec);
        assert_eq!(d.fixed_ids().count(), 0);
        assert!(d.regions.is_empty());
        assert!(d.cells.iter().all(|c| c.edge_left.0 == 0));
        // ~10 % multi-height.
        let multi = d.cells.iter().filter(|c| c.height_rows > 1).count();
        let ratio = multi as f64 / d.num_cells() as f64;
        assert!((0.03..0.25).contains(&ratio), "multi-height ratio {ratio}");
    }

    #[test]
    fn gp_has_overlaps_and_everything_in_core() {
        let spec = small_opencores();
        let d = generate(&spec);
        let rh = d.tech.row_height;
        for c in &d.cells {
            assert!(d.core.contains(&c.rect(rh)));
        }
        // Global placement must be overlapping (otherwise legalization is
        // trivial and order-insensitive).
        let tree = rlleg_geom::rtree::RTree::bulk_load(
            d.movable_ids()
                .map(|id| (d.cell(id).rect(rh), id))
                .collect::<Vec<_>>(),
        );
        let overlapping = d
            .movable_ids()
            .filter(|&id| {
                let r = d.cell(id).rect(rh);
                tree.query(&r).any(|(_, &v)| v != id)
            })
            .count();
        assert!(
            overlapping * 5 >= d.num_movable(),
            "at least 20% of cells overlap something, got {overlapping}/{}",
            d.num_movable()
        );
    }

    #[test]
    fn nets_are_mostly_local() {
        let spec = small_opencores();
        let d = generate(&spec);
        let mut spans: Vec<i64> = (0..d.num_nets() as u32)
            .map(|i| rlleg_design::metrics::net_hpwl(&d, rlleg_design::NetId(i)))
            .collect();
        spans.sort_unstable();
        let median = spans[spans.len() / 2];
        assert!(
            median < d.core.width() / 2,
            "median net span {median} should be well under the core width {}",
            d.core.width()
        );
    }

    #[test]
    fn gcell_grid_scales_with_area() {
        // Full-size des_perf_a_md1 is 8.1e11 nm² => ~900k x 900k => 5x5.
        let spec = find_spec("des_perf_a_md1").expect("exists");
        // Generating 108k cells is too slow for a unit test; check the
        // formula through a mid-sized scale instead.
        let d = generate(&spec.scaled(0.02));
        let (nx, ny) = d.default_gcell_grid();
        assert!(nx >= 1 && ny >= 1);
    }
}
