//! Benchmark specifications mirroring the paper's Tables II–III.
//!
//! The ICCAD-2017 contest and OpenCores benchmarks are not redistributable,
//! so the reproduction regenerates designs with the *published
//! characteristics* of each row: cell count, core area, density, Gcell
//! grid, plus the structural traits of each family (contest designs have
//! fences/macros/edge types and the contest technology; OpenCores designs
//! are 75 %-utilization Nangate 45 nm with ~10 % multi-height cells).

use serde::{Deserialize, Serialize};

use rlleg_design::Technology;

/// Which benchmark family a spec belongs to (white vs. gray rows of
/// Tables II–III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Family {
    /// ICCAD-2017 contest style: contest technology, fences on `_a`/`_b`
    /// variants, macros, edge-spacing types, max-displacement constraint.
    Contest,
    /// OpenCores style: Nangate 45 nm, 75 % utilization, aspect ratio 1.0,
    /// 10 % multi-height cells.
    OpenCores,
}

/// A synthetic benchmark specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Design name (matches the paper's row).
    pub name: String,
    /// Benchmark family.
    pub family: Family,
    /// Number of movable cells at scale 1.0.
    pub num_cells: usize,
    /// Core area at scale 1.0, in dbu² (the paper reports e+11 units).
    pub area: f64,
    /// Target movable-area density (utilization).
    pub density: f64,
    /// Fraction of cells that are multi-height (2–4 rows).
    pub multi_height_ratio: f64,
    /// Fraction of the core covered by fixed macros.
    pub macro_area_frac: f64,
    /// Number of fence regions.
    pub num_fences: usize,
    /// Whether cells carry nonzero edge types (contest edge-spacing rule).
    pub edge_types: bool,
    /// Maximum-displacement constraint in rows of distance, if any.
    pub max_disp_rows: Option<i64>,
    /// RNG seed for generation.
    pub seed: u64,
    /// Core area of the *unscaled* design (used to derive the paper's
    /// Gcell grid even for scaled-down instances).
    pub full_area: f64,
}

impl BenchmarkSpec {
    /// The spec scaled down (or up) by `scale`: cell count and area shrink
    /// together so density and the per-Gcell structure are preserved. A
    /// floor of 60 cells keeps tiny scales meaningful.
    pub fn scaled(&self, scale: f64) -> BenchmarkSpec {
        self.scaled_to(((self.num_cells as f64 * scale).round() as usize).max(60))
    }

    /// The spec scaled to an explicit cell count (the `--cells` presets of
    /// the bench/fuzz harnesses): area scales with the cell-count ratio so
    /// density and per-Gcell structure are preserved, exactly like
    /// [`scaled`](Self::scaled).
    ///
    /// When *growing* past the table row, the max-displacement constraint
    /// scales with the die side (`sqrt` of the cell ratio): the table's
    /// row budget is calibrated to the row's die, and keeping it absolute
    /// while the die grows makes legalization infeasible wherever the
    /// synthetic global placement clumps (observed from ~300k cells).
    /// Shrinking keeps the row's budget, as ever.
    ///
    /// # Panics
    ///
    /// Panics instead of silently clamping when `num_cells` leaves the
    /// `u32` id space the occupancy grid reserves (two values are
    /// free/blocked sentinels), or when the scaled area overflows `f64`
    /// into non-finite territory.
    pub fn scaled_to(&self, num_cells: usize) -> BenchmarkSpec {
        assert!(
            num_cells < (u32::MAX - 2) as usize,
            "{num_cells} cells exceeds the u32 cell-id space"
        );
        let mut s = self.clone();
        s.num_cells = num_cells.max(60);
        s.area = self.area * (s.num_cells as f64 / self.num_cells as f64);
        assert!(
            s.area.is_finite() && s.area > 0.0,
            "scaled area {} is not representable",
            s.area
        );
        if s.num_cells > self.num_cells {
            if let Some(mr) = self.max_disp_rows {
                let side_ratio = (s.num_cells as f64 / self.num_cells as f64).sqrt();
                s.max_disp_rows = Some((mr as f64 * side_ratio).ceil() as i64);
            }
        }
        s
    }

    /// The Gcell grid the paper would use for the *full-size* design:
    /// `ceil(side / 200 um)` per axis, capped at 5x5 (Sec. III-E-1). Stable
    /// under [`scaled`](Self::scaled), so scaled benches can partition like
    /// the paper's Tables II-III report.
    pub fn paper_gcell_grid(&self) -> (usize, usize) {
        let side = self.full_area.sqrt();
        let per_axis = ((side / 200_000.0).ceil() as usize).clamp(1, 5);
        (per_axis, per_axis)
    }

    /// The technology for this spec's family.
    pub fn technology(&self) -> Technology {
        match self.family {
            Family::Contest => Technology::contest(),
            Family::OpenCores => Technology::nangate45(),
        }
    }
}

fn contest(
    name: &str,
    num_cells: usize,
    area_e11: f64,
    density: f64,
    macro_area_frac: f64,
    num_fences: usize,
    seed: u64,
) -> BenchmarkSpec {
    BenchmarkSpec {
        name: name.to_owned(),
        family: Family::Contest,
        num_cells,
        area: area_e11 * 1e11,
        density,
        multi_height_ratio: 0.12,
        macro_area_frac,
        num_fences,
        edge_types: true,
        max_disp_rows: Some(120),
        seed,
        full_area: area_e11 * 1e11,
    }
}

fn opencores(name: &str, num_cells: usize, area_e11: f64, seed: u64) -> BenchmarkSpec {
    BenchmarkSpec {
        name: name.to_owned(),
        family: Family::OpenCores,
        num_cells,
        area: area_e11 * 1e11,
        density: 0.75,
        multi_height_ratio: 0.10,
        macro_area_frac: 0.0,
        num_fences: 0,
        edge_types: false,
        max_disp_rows: None,
        seed,
        full_area: area_e11 * 1e11,
    }
}

/// The 23 training benchmarks of Table II (18 contest + 5 OpenCores rows
/// are actually 13 contest + 10 OpenCores; order follows the table).
pub fn training_suite() -> Vec<BenchmarkSpec> {
    vec![
        contest("des_perf_1", 112_644, 1.98, 0.91, 0.00, 0, 11),
        contest("des_perf_a_md1", 108_292, 8.10, 0.55, 0.15, 2, 12),
        contest("des_perf_b_md1", 112_644, 3.60, 0.55, 0.10, 2, 13),
        contest("des_perf_b_md2", 112_644, 3.60, 0.65, 0.10, 2, 14),
        contest("edit_dist_1_md1", 130_661, 5.21, 0.67, 0.00, 0, 15),
        contest("edit_dist_a_md2", 127_419, 6.40, 0.59, 0.15, 1, 16),
        contest("edit_dist_a_md3", 127_419, 6.40, 0.57, 0.15, 1, 17),
        contest("fft_2_md2", 32_281, 1.17, 0.83, 0.00, 0, 18),
        contest("fft_a_md3", 30_631, 6.40, 0.31, 0.20, 1, 19),
        contest("pci_bridge32_a_md2", 29_521, 1.60, 0.58, 0.15, 1, 20),
        contest("pci_bridge32_b_md1", 28_920, 6.40, 0.26, 0.25, 2, 21),
        contest("pci_bridge32_b_md2", 28_920, 6.40, 0.18, 0.25, 2, 22),
        contest("pci_bridge32_b_md3", 28_920, 6.40, 0.22, 0.25, 2, 23),
        opencores("aes_cipher_top", 10_006, 0.16, 24),
        opencores("des3", 42_788, 1.02, 25),
        opencores("eth_top", 41_871, 1.09, 26),
        opencores("jpeg_encoder", 35_688, 0.83, 27),
        opencores("mc_top", 4_576, 0.12, 28),
        opencores("nova", 136_961, 3.46, 29),
        opencores("sasc_top", 442, 0.01, 30),
        opencores("spi_top", 1_486, 0.04, 31),
        opencores("usb_phy", 321, 0.01, 32),
        opencores("wb_conmax_top", 18_961, 0.43, 33),
    ]
}

/// The 5 held-out test benchmarks of Table III.
pub fn test_suite() -> Vec<BenchmarkSpec> {
    vec![
        contest("des_perf_a_md2", 108_292, 8.10, 0.56, 0.15, 2, 41),
        contest("fft_a_md2", 30_631, 6.40, 0.32, 0.20, 1, 42),
        contest("pci_bridge32_a_md1", 29_521, 1.60, 0.50, 0.15, 1, 43),
        opencores("keccak", 24_902, 0.52, 44),
        opencores("point_scalar_mult", 51_294, 1.14, 45),
    ]
}

/// Parses a `--cells` scale preset: `1k`, `10k`, `100k`, `1m` (any case,
/// any integer prefix with a `k`/`m` suffix), or a plain cell count.
pub fn parse_cells(s: &str) -> Option<usize> {
    let s = s.trim().to_ascii_lowercase();
    let (digits, mult) = match s.strip_suffix('k') {
        Some(d) => (d, 1_000usize),
        None => match s.strip_suffix('m') {
            Some(d) => (d, 1_000_000usize),
            None => (s.as_str(), 1usize),
        },
    };
    digits.parse::<usize>().ok()?.checked_mul(mult)
}

/// Looks a spec up by name across both suites.
pub fn find_spec(name: &str) -> Option<BenchmarkSpec> {
    training_suite()
        .into_iter()
        .chain(test_suite())
        .find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_match_table_sizes() {
        assert_eq!(training_suite().len(), 23);
        assert_eq!(test_suite().len(), 5);
    }

    #[test]
    fn all_names_unique() {
        let mut names: Vec<String> = training_suite()
            .into_iter()
            .chain(test_suite())
            .map(|s| s.name)
            .collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn scaling_preserves_density() {
        let s = find_spec("des_perf_1").expect("exists");
        let small = s.scaled(0.05);
        assert!((small.num_cells as f64 - 112_644.0 * 0.05).abs() < 1.0);
        let cells_ratio = small.num_cells as f64 / s.num_cells as f64;
        let area_ratio = small.area / s.area;
        assert!((cells_ratio - area_ratio).abs() < 1e-9);
        assert_eq!(small.density, s.density);
    }

    #[test]
    fn scaling_has_floor() {
        let s = find_spec("usb_phy").expect("exists");
        assert_eq!(s.scaled(0.001).num_cells, 60);
    }

    #[test]
    fn scaled_to_hits_exact_presets() {
        let s = find_spec("des_perf_b_md1").expect("exists");
        for cells in [1_000usize, 10_000, 100_000, 1_000_000] {
            let big = s.scaled_to(cells);
            assert_eq!(big.num_cells, cells);
            let cells_ratio = big.num_cells as f64 / s.num_cells as f64;
            assert!((big.area / s.area - cells_ratio).abs() < 1e-9);
            assert_eq!(big.density, s.density);
            assert!(big.area.is_finite());
        }
        // The 60-cell floor still applies to tiny explicit counts.
        assert_eq!(s.scaled_to(3).num_cells, 60);
    }

    #[test]
    fn growing_scales_the_displacement_budget_with_the_die_side() {
        let s = find_spec("des_perf_b_md1").expect("exists");
        // Growing: budget scales by sqrt(cell ratio), rounded up.
        let big = s.scaled_to(1_000_000);
        let side_ratio = (1_000_000.0f64 / s.num_cells as f64).sqrt();
        let want = (120.0 * side_ratio).ceil() as i64;
        assert_eq!(big.max_disp_rows, Some(want));
        assert!(want > 120);
        // Shrinking keeps the table row's budget.
        assert_eq!(s.scaled_to(1_000).max_disp_rows, Some(120));
        assert_eq!(s.scaled(0.05).max_disp_rows, Some(120));
        // OpenCores rows have no constraint either way.
        let oc = find_spec("nova").expect("exists");
        assert_eq!(oc.scaled_to(1_000_000).max_disp_rows, None);
    }

    #[test]
    #[should_panic(expected = "u32 cell-id space")]
    fn scaled_to_rejects_id_space_overflow() {
        let s = find_spec("des_perf_b_md1").expect("exists");
        let _ = s.scaled_to(u32::MAX as usize);
    }

    #[test]
    fn parse_cells_handles_presets_and_integers() {
        assert_eq!(parse_cells("1k"), Some(1_000));
        assert_eq!(parse_cells("10K"), Some(10_000));
        assert_eq!(parse_cells("100k"), Some(100_000));
        assert_eq!(parse_cells("1m"), Some(1_000_000));
        assert_eq!(parse_cells(" 2M "), Some(2_000_000));
        assert_eq!(parse_cells("54321"), Some(54_321));
        assert_eq!(parse_cells(""), None);
        assert_eq!(parse_cells("k"), None);
        assert_eq!(parse_cells("1.5k"), None);
        assert_eq!(parse_cells("lots"), None);
    }

    #[test]
    fn paper_gcell_grid_matches_table() {
        // Table II: des_perf_1 is 3x3, des_perf_a_md1 is 5x5, usb_phy 1x1.
        assert_eq!(find_spec("des_perf_1").unwrap().paper_gcell_grid(), (3, 3));
        assert_eq!(
            find_spec("des_perf_a_md1").unwrap().paper_gcell_grid(),
            (5, 5)
        );
        assert_eq!(find_spec("usb_phy").unwrap().paper_gcell_grid(), (1, 1));
        // Scaling does not change the paper grid.
        assert_eq!(
            find_spec("des_perf_1")
                .unwrap()
                .scaled(0.003)
                .paper_gcell_grid(),
            (3, 3)
        );
    }

    #[test]
    fn families_pick_technologies() {
        assert_eq!(
            find_spec("des_perf_1").unwrap().technology().name,
            "iccad2017"
        );
        assert_eq!(find_spec("usb_phy").unwrap().technology().name, "nangate45");
    }

    #[test]
    fn find_spec_misses_gracefully() {
        assert!(find_spec("not_a_design").is_none());
    }
}
