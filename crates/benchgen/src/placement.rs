//! A lightweight global-placement substrate.
//!
//! The paper assumes "the result of the preceding global placement is
//! well-optimized with respect to timing or wirelength" (Sec. II-A). The
//! generator first lays cells out with density-controlled locality
//! (see [`generate`](crate::generate)); this module then refines the
//! placement like a quadratic global placer would: net-centroid attraction
//! (wirelength) interleaved with bin-based density spreading, producing the
//! overlapping, off-grid positions a legalizer actually sees.

use rand::Rng;

use rlleg_design::Design;
use rlleg_geom::Point;

/// Configuration for [`refine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineConfig {
    /// Number of attraction+spreading rounds.
    pub iterations: usize,
    /// Step fraction toward the net centroid per round (0..1).
    pub attraction: f64,
    /// Step fraction away from overfull bins per round (0..1).
    pub spreading: f64,
    /// Bin utilization above which spreading kicks in.
    pub overflow_threshold: f64,
}

impl Default for RefineConfig {
    fn default() -> Self {
        Self {
            iterations: 4,
            attraction: 0.35,
            spreading: 0.45,
            overflow_threshold: 1.05,
        }
    }
}

/// Refines global-placement positions in place: pulls each movable cell
/// toward the centroid of its nets, then pushes cells out of overfull bins,
/// keeping fenced cells inside their regions and everything inside the core.
pub fn refine(design: &mut Design, cfg: RefineConfig, rng: &mut impl Rng) {
    let rh = design.tech.row_height;
    let target_density = design.density().max(0.05);
    // ~60 cells per spreading bin keeps the grid coarse enough to move mass.
    let n = design.num_movable().max(1);
    let bins_per_axis = (((n as f64) / 60.0).sqrt().ceil() as i64).max(1);
    let core = design.core;
    let bw = (core.width() / bins_per_axis).max(1);
    let bh = (core.height() / bins_per_axis).max(1);
    let bin_of = |p: Point| -> (i64, i64) {
        (
            ((p.x - core.lo.x) / bw).clamp(0, bins_per_axis - 1),
            ((p.y - core.lo.y) / bh).clamp(0, bins_per_axis - 1),
        )
    };

    for _ in 0..cfg.iterations {
        // --- wirelength attraction ---
        let targets: Vec<Option<Point>> = design
            .cell_ids()
            .map(|id| {
                if !design.cell(id).is_movable() {
                    return None;
                }
                let nets = design.nets_of(id);
                if nets.is_empty() {
                    return None;
                }
                let (mut sx, mut sy, mut k) = (0i128, 0i128, 0i128);
                for &nid in nets {
                    for pin in &design.net(nid).pins {
                        let p = design.pin_pos(pin);
                        sx += i128::from(p.x);
                        sy += i128::from(p.y);
                        k += 1;
                    }
                }
                Some(Point::new((sx / k) as i64, (sy / k) as i64))
            })
            .collect();
        for id in design.cell_ids().collect::<Vec<_>>() {
            if let Some(t) = targets[id.index()] {
                let c = design.cell_mut(id);
                let dx = ((t.x - c.pos.x) as f64 * cfg.attraction) as i64;
                let dy = ((t.y - c.pos.y) as f64 * cfg.attraction) as i64;
                c.pos = c.pos.translated(dx, dy);
            }
        }

        // --- density spreading ---
        let mut fill = vec![0f64; (bins_per_axis * bins_per_axis) as usize];
        for id in design.movable_ids() {
            let c = design.cell(id);
            let (bx, by) = bin_of(c.rect(rh).center());
            fill[(by * bins_per_axis + bx) as usize] += c.area(rh) as f64;
        }
        let capacity = (bw * bh) as f64 * target_density;
        for id in design.cell_ids().collect::<Vec<_>>() {
            if !design.cell(id).is_movable() {
                continue;
            }
            let centre = design.cell(id).rect(rh).center();
            let (bx, by) = bin_of(centre);
            let u = fill[(by * bins_per_axis + bx) as usize] / capacity.max(1.0);
            if u <= cfg.overflow_threshold {
                continue;
            }
            // Move toward the least-filled 4-neighbour.
            let mut best: Option<(f64, i64, i64)> = None;
            for (dx, dy) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
                let (nx, ny) = (bx + dx, by + dy);
                if nx < 0 || ny < 0 || nx >= bins_per_axis || ny >= bins_per_axis {
                    continue;
                }
                let nu = fill[(ny * bins_per_axis + nx) as usize] / capacity.max(1.0);
                if best.is_none_or(|(bu, _, _)| nu < bu) {
                    best = Some((nu, dx, dy));
                }
            }
            if let Some((nu, dx, dy)) = best {
                if nu < u {
                    let step = cfg.spreading * (u - nu).min(2.0) / 2.0;
                    let jitter_x = rng.gen_range(-bw / 8..=bw / 8);
                    let jitter_y = rng.gen_range(-bh / 8..=bh / 8);
                    let c = design.cell_mut(id);
                    c.pos = c.pos.translated(
                        (dx as f64 * bw as f64 * step) as i64 + jitter_x,
                        (dy as f64 * bh as f64 * step) as i64 + jitter_y,
                    );
                }
            }
        }

        clamp_into_bounds(design);
    }

    // Final pass: fenced cells inside their regions, gp_pos snapshot.
    clamp_into_bounds(design);
    for id in design.cell_ids().collect::<Vec<_>>() {
        if design.cell(id).is_movable() {
            let p = design.cell(id).pos;
            design.cell_mut(id).gp_pos = p;
        }
    }
}

/// Clamps every movable cell inside the core, and fenced cells inside (one
/// rectangle of) their region.
pub fn clamp_into_bounds(design: &mut Design) {
    let rh = design.tech.row_height;
    let core = design.core;
    for id in design.cell_ids().collect::<Vec<_>>() {
        let c = design.cell(id);
        if !c.is_movable() {
            continue;
        }
        let (w, h) = (c.width, c.height(rh));
        let mut bounds = core;
        if let Some(reg) = c.region {
            // Clamp into the region rectangle nearest to the cell.
            let pos = c.pos;
            let region = design.region(reg);
            if let Some(r) = region
                .rects
                .iter()
                .filter(|r| r.width() >= w && r.height() >= h)
                .min_by_key(|r| r.manhattan_to_point(pos))
            {
                bounds = *r;
            }
        }
        let x = c
            .pos
            .x
            .clamp(bounds.lo.x, (bounds.hi.x - w).max(bounds.lo.x));
        let y = c
            .pos
            .y
            .clamp(bounds.lo.y, (bounds.hi.y - h).max(bounds.lo.y));
        design.cell_mut(id).pos = Point::new(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rlleg_design::{metrics, DesignBuilder, Technology};
    use rlleg_geom::Rect;

    fn clustered_design() -> Design {
        // All cells piled in one corner, chained by nets.
        let mut b = DesignBuilder::new("rf", Technology::contest(), 100, 40);
        for i in 0..120 {
            b.add_cell(
                format!("u{i}"),
                1,
                1,
                Point::new((i % 10) * 40, (i / 10) * 150),
            );
        }
        for i in 0..119u32 {
            b.add_net(
                format!("n{i}"),
                vec![
                    (rlleg_design::CellId(i), 0, 0),
                    (rlleg_design::CellId(i + 1), 0, 0),
                ],
            );
        }
        b.build()
    }

    #[test]
    fn refine_spreads_an_overfull_corner() {
        let mut d = clustered_design();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let before_extent = d
            .cells
            .iter()
            .map(|c| c.pos.x + c.pos.y)
            .max()
            .expect("cells");
        refine(
            &mut d,
            RefineConfig {
                iterations: 12,
                ..Default::default()
            },
            &mut rng,
        );
        let after_extent = d
            .cells
            .iter()
            .map(|c| c.pos.x + c.pos.y)
            .max()
            .expect("cells");
        assert!(
            after_extent > before_extent,
            "spreading must push cells outward: {before_extent} -> {after_extent}"
        );
        // Everything still inside the core.
        let rh = d.tech.row_height;
        for c in &d.cells {
            assert!(d.core.contains(&c.rect(rh)), "cell at {} escaped", c.pos);
        }
        // gp_pos snapshot taken.
        for c in d.cells.iter().filter(|c| c.is_movable()) {
            assert_eq!(c.gp_pos, c.pos);
        }
    }

    #[test]
    fn attraction_shortens_a_stretched_net() {
        let mut b = DesignBuilder::new("att", Technology::contest(), 100, 40);
        let a = b.add_cell("a", 1, 1, Point::new(0, 0));
        let c = b.add_cell("c", 1, 1, Point::new(19_000, 70_000));
        b.add_net("n", vec![(a, 0, 0), (c, 0, 0)]);
        let mut d = b.build();
        let before = metrics::total_hpwl(&d);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        refine(
            &mut d,
            RefineConfig {
                iterations: 3,
                spreading: 0.0,
                ..Default::default()
            },
            &mut rng,
        );
        let after = metrics::total_hpwl(&d);
        assert!(after < before, "hpwl {before} -> {after}");
    }

    #[test]
    fn clamp_respects_fences() {
        let mut b = DesignBuilder::new("cl", Technology::contest(), 100, 40);
        let a = b.add_cell("a", 2, 1, Point::new(50_000, 50_000));
        let r = b.add_region("f", vec![Rect::new(0, 0, 4_000, 8_000)]);
        b.assign_region(a, r);
        let mut d = b.build();
        clamp_into_bounds(&mut d);
        let rh = d.tech.row_height;
        assert!(d.region(r).contains(&d.cell(a).rect(rh)));
    }
}
