use serde::{Deserialize, Serialize};

use crate::Dbu;

/// A point in database units.
///
/// ```
/// use rlleg_geom::Point;
/// let p = Point::new(3, 4);
/// assert_eq!(p.manhattan(Point::new(0, 0)), 7);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Dbu,
    /// Vertical coordinate.
    pub y: Dbu,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: Dbu, y: Dbu) -> Self {
        Self { x, y }
    }

    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0, 0);

    /// Manhattan (L1) distance to `other`.
    ///
    /// ```
    /// use rlleg_geom::Point;
    /// assert_eq!(Point::new(1, 1).manhattan(Point::new(-2, 5)), 7);
    /// ```
    pub fn manhattan(self, other: Point) -> Dbu {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise translation by `(dx, dy)`.
    pub fn translated(self, dx: Dbu, dy: Dbu) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl From<(Dbu, Dbu)> for Point {
    fn from((x, y): (Dbu, Dbu)) -> Self {
        Point::new(x, y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl std::ops::Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric() {
        let a = Point::new(10, -3);
        let b = Point::new(-7, 22);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn arithmetic() {
        let a = Point::new(1, 2);
        let b = Point::new(3, -4);
        assert_eq!(a + b, Point::new(4, -2));
        assert_eq!(a - b, Point::new(-2, 6));
        assert_eq!(a.translated(9, 8), Point::new(10, 10));
    }

    #[test]
    fn conversions_and_display() {
        let p: Point = (5, 6).into();
        assert_eq!(p, Point::new(5, 6));
        assert_eq!(p.to_string(), "(5, 6)");
        assert_eq!(Point::ORIGIN, Point::default());
    }
}
