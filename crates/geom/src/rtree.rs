//! An R-tree spatial index.
//!
//! The paper extracts geometric features (overlap counts, nearest-obstacle
//! distances) through the Boost R-tree; this module is the from-scratch Rust
//! replacement. It supports incremental insertion (quadratic split, the
//! classic Guttman variant), deletion, rectangle-intersection queries, and
//! k-nearest-neighbour queries by Manhattan distance, plus a Sort-Tile-
//! Recursive (STR) bulk loader for building an index over a whole design at
//! once.
//!
//! ```
//! use rlleg_geom::{Rect, Point, rtree::RTree};
//!
//! let items = (0..100).map(|i| (Rect::new(i * 10, 0, i * 10 + 5, 5), i)).collect::<Vec<_>>();
//! let tree = RTree::bulk_load(items);
//! assert_eq!(tree.len(), 100);
//! let near: Vec<_> = tree.nearest(Point::new(42, 2), 3).map(|(_, v, _)| *v).collect();
//! assert_eq!(near.len(), 3);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{Dbu, Point, Rect};

/// Maximum number of entries per node before a split.
const MAX_ENTRIES: usize = 8;
/// Minimum number of entries assigned to each half of a split.
const MIN_ENTRIES: usize = 3;

#[derive(Debug, Clone)]
struct Entry {
    rect: Rect,
    /// Child node index for internal nodes, item index for leaves.
    child: usize,
}

#[derive(Debug, Clone)]
struct Node {
    is_leaf: bool,
    entries: Vec<Entry>,
}

impl Node {
    fn mbr(&self) -> Rect {
        let mut it = self.entries.iter();
        let first = it.next().expect("mbr of empty node").rect;
        it.fold(first, |acc, e| acc.union(&e.rect))
    }
}

/// An R-tree mapping [`Rect`] keys to values of type `T`.
///
/// Duplicate rectangles are allowed. Values are stored in a stable arena, so
/// removal never invalidates other items' indices.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    nodes: Vec<Node>,
    items: Vec<Option<(Rect, T)>>,
    free_items: Vec<usize>,
    root: usize,
    len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            nodes: vec![Node {
                is_leaf: true,
                entries: Vec::new(),
            }],
            items: Vec::new(),
            free_items: Vec::new(),
            root: 0,
            len: 0,
        }
    }

    /// Number of items in the tree.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bulk loads the tree with Sort-Tile-Recursive packing.
    ///
    /// Roughly `O(n log n)` and produces a well-packed tree; prefer it over
    /// repeated [`insert`](RTree::insert) when the item set is known upfront.
    pub fn bulk_load(items: Vec<(Rect, T)>) -> Self {
        let mut tree = RTree::new();
        if items.is_empty() {
            return tree;
        }
        tree.len = items.len();
        let mut refs: Vec<usize> = (0..items.len()).collect();
        tree.items = items.into_iter().map(Some).collect();

        // STR: sort by center x, slice into vertical strips of ~sqrt(n/M)
        // leaves each, sort each strip by center y, chunk into leaves.
        let n = refs.len();
        let leaf_count = n.div_ceil(MAX_ENTRIES);
        let strips = (leaf_count as f64).sqrt().ceil() as usize;
        let per_strip = n.div_ceil(strips);
        refs.sort_by_key(|&i| tree.items[i].as_ref().map(|(r, _)| r.center().x));

        let mut leaves: Vec<usize> = Vec::with_capacity(leaf_count);
        for strip in refs.chunks(per_strip) {
            let mut strip = strip.to_vec();
            strip.sort_by_key(|&i| tree.items[i].as_ref().map(|(r, _)| r.center().y));
            for chunk in strip.chunks(MAX_ENTRIES) {
                let entries = chunk
                    .iter()
                    .map(|&i| Entry {
                        rect: tree.items[i].as_ref().unwrap().0,
                        child: i,
                    })
                    .collect();
                tree.nodes.push(Node {
                    is_leaf: true,
                    entries,
                });
                leaves.push(tree.nodes.len() - 1);
            }
        }

        // Build upper levels until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            for chunk in level.chunks(MAX_ENTRIES) {
                let entries = chunk
                    .iter()
                    .map(|&ni| Entry {
                        rect: self_mbr(&tree.nodes, ni),
                        child: ni,
                    })
                    .collect();
                tree.nodes.push(Node {
                    is_leaf: false,
                    entries,
                });
                next.push(tree.nodes.len() - 1);
            }
            level = next;
        }
        tree.root = level[0];
        tree
    }

    /// Inserts `value` keyed by `rect`.
    pub fn insert(&mut self, rect: Rect, value: T) {
        let item_idx = match self.free_items.pop() {
            Some(i) => {
                self.items[i] = Some((rect, value));
                i
            }
            None => {
                self.items.push(Some((rect, value)));
                self.items.len() - 1
            }
        };
        self.len += 1;
        self.insert_entry(rect, item_idx);
    }

    fn insert_entry(&mut self, rect: Rect, item_idx: usize) {
        // Descend to the best leaf, remembering the path for MBR fix-up.
        let mut path = Vec::new();
        let mut node = self.root;
        while !self.nodes[node].is_leaf {
            let best = self.nodes[node]
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| {
                    let enlarged = e.rect.union(&rect).area() - e.rect.area();
                    (enlarged, e.rect.area())
                })
                .map(|(i, _)| i)
                .expect("internal node with no entries");
            path.push((node, best));
            self.nodes[node].entries[best].rect = self.nodes[node].entries[best].rect.union(&rect);
            node = self.nodes[node].entries[best].child;
        }

        self.nodes[node].entries.push(Entry {
            rect,
            child: item_idx,
        });

        // Split upward while nodes overflow.
        let mut overflowed = node;
        while self.nodes[overflowed].entries.len() > MAX_ENTRIES {
            let (sib_rect, sibling) = self.split(overflowed);
            match path.pop() {
                Some((parent, entry_idx)) => {
                    self.nodes[parent].entries[entry_idx].rect = self.nodes[overflowed].mbr();
                    self.nodes[parent].entries.push(Entry {
                        rect: sib_rect,
                        child: sibling,
                    });
                    overflowed = parent;
                }
                None => {
                    // Root split: grow the tree by one level.
                    let old_root = overflowed;
                    let new_root = Node {
                        is_leaf: false,
                        entries: vec![
                            Entry {
                                rect: self.nodes[old_root].mbr(),
                                child: old_root,
                            },
                            Entry {
                                rect: sib_rect,
                                child: sibling,
                            },
                        ],
                    };
                    self.nodes.push(new_root);
                    self.root = self.nodes.len() - 1;
                    break;
                }
            }
        }
    }

    /// Quadratic split of `node`; returns the new sibling's MBR and index.
    fn split(&mut self, node: usize) -> (Rect, usize) {
        let entries = std::mem::take(&mut self.nodes[node].entries);
        // Pick the seed pair wasting the most area if grouped together.
        let (mut s1, mut s2, mut worst) = (0, 1, i64::MIN);
        for i in 0..entries.len() {
            for j in (i + 1)..entries.len() {
                let waste = entries[i].rect.union(&entries[j].rect).area()
                    - entries[i].rect.area()
                    - entries[j].rect.area();
                if waste > worst {
                    (s1, s2, worst) = (i, j, waste);
                }
            }
        }
        let mut g1 = vec![entries[s1].clone()];
        let mut g2 = vec![entries[s2].clone()];
        let mut r1 = entries[s1].rect;
        let mut r2 = entries[s2].rect;
        let mut rest: Vec<Entry> = entries
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i != s1 && *i != s2)
            .map(|(_, e)| e)
            .collect();
        while let Some(e) = rest.pop() {
            // Force-assign when one group must absorb the remainder to reach
            // the minimum fill.
            let remaining = rest.len() + 1;
            if g1.len() + remaining <= MIN_ENTRIES {
                r1 = r1.union(&e.rect);
                g1.push(e);
                continue;
            }
            if g2.len() + remaining <= MIN_ENTRIES {
                r2 = r2.union(&e.rect);
                g2.push(e);
                continue;
            }
            let d1 = r1.union(&e.rect).area() - r1.area();
            let d2 = r2.union(&e.rect).area() - r2.area();
            if d1 <= d2 {
                r1 = r1.union(&e.rect);
                g1.push(e);
            } else {
                r2 = r2.union(&e.rect);
                g2.push(e);
            }
        }
        let is_leaf = self.nodes[node].is_leaf;
        self.nodes[node].entries = g1;
        self.nodes.push(Node {
            is_leaf,
            entries: g2,
        });
        (r2, self.nodes.len() - 1)
    }

    /// Iterates over all `(rect, value)` pairs whose rectangle's interior
    /// intersects `window`.
    pub fn query<'a>(&'a self, window: &Rect) -> Query<'a, T> {
        Query {
            tree: self,
            window: *window,
            stack: vec![self.root],
            leaf: None,
        }
    }

    /// Counts items intersecting `window` without materializing them.
    pub fn count_overlapping(&self, window: &Rect) -> usize {
        self.query(window).count()
    }

    /// Iterates over the `k` items nearest to `p` by Manhattan distance from
    /// `p` to each item's rectangle (distance 0 when `p` is inside).
    ///
    /// Yields `(rect, value, distance)` in non-decreasing distance order.
    pub fn nearest(&self, p: Point, k: usize) -> Nearest<'_, T> {
        let mut heap = BinaryHeap::new();
        if self.len > 0 {
            heap.push(Reverse((0, HeapRef::Node(self.root))));
        }
        Nearest {
            tree: self,
            p,
            remaining: k,
            heap,
        }
    }

    /// Removes one item with an identical `rect` for which `pred` holds.
    ///
    /// Returns the removed value, or `None` when nothing matched. Underfull
    /// nodes are tolerated (queries stay correct; packing quality degrades
    /// gracefully under heavy churn, which the legalizer never produces).
    pub fn remove_if(&mut self, rect: &Rect, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            if self.nodes[n].is_leaf {
                let found = self.nodes[n].entries.iter().position(|e| {
                    e.rect == *rect && self.items[e.child].as_ref().is_some_and(|(_, v)| pred(v))
                });
                if let Some(pos) = found {
                    let item_idx = self.nodes[n].entries.remove(pos).child;
                    let (_, value) = self.items[item_idx].take().expect("live item");
                    self.free_items.push(item_idx);
                    self.len -= 1;
                    return Some(value);
                }
            } else {
                for e in &self.nodes[n].entries {
                    // Containment, not overlap: an item's rect is always
                    // fully inside every ancestor MBR.
                    if e.rect.contains(rect) {
                        stack.push(e.child);
                    }
                }
            }
        }
        None
    }

    /// Iterates over every live `(rect, value)` pair in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Rect, &T)> {
        self.items
            .iter()
            .filter_map(|o| o.as_ref().map(|(r, v)| (r, v)))
    }
}

fn self_mbr(nodes: &[Node], idx: usize) -> Rect {
    nodes[idx].mbr()
}

/// Iterator over items intersecting a query window. See [`RTree::query`].
pub struct Query<'a, T> {
    tree: &'a RTree<T>,
    window: Rect,
    stack: Vec<usize>,
    leaf: Option<(usize, usize)>,
}

impl<'a, T> Iterator for Query<'a, T> {
    type Item = (&'a Rect, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((node, ref mut pos)) = self.leaf {
                let entries = &self.tree.nodes[node].entries;
                while *pos < entries.len() {
                    let e = &entries[*pos];
                    *pos += 1;
                    if e.rect.overlaps(&self.window) {
                        if let Some((r, v)) = self.tree.items[e.child].as_ref() {
                            return Some((r, v));
                        }
                    }
                }
                self.leaf = None;
            }
            let node = self.stack.pop()?;
            if self.tree.nodes[node].is_leaf {
                if !self.tree.nodes[node].entries.is_empty() {
                    self.leaf = Some((node, 0));
                }
            } else {
                for e in &self.tree.nodes[node].entries {
                    if e.rect.overlaps(&self.window) {
                        self.stack.push(e.child);
                    }
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum HeapRef {
    Node(usize),
    Item(usize),
}

/// Best-first k-nearest iterator. See [`RTree::nearest`].
pub struct Nearest<'a, T> {
    tree: &'a RTree<T>,
    p: Point,
    remaining: usize,
    heap: BinaryHeap<Reverse<(Dbu, HeapRef)>>,
}

impl<'a, T> Iterator for Nearest<'a, T> {
    type Item = (&'a Rect, &'a T, Dbu);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        while let Some(Reverse((dist, href))) = self.heap.pop() {
            match href {
                HeapRef::Item(i) => {
                    if let Some((r, v)) = self.tree.items[i].as_ref() {
                        self.remaining -= 1;
                        return Some((r, v, dist));
                    }
                }
                HeapRef::Node(n) => {
                    let node = &self.tree.nodes[n];
                    for e in &node.entries {
                        let d = e.rect.manhattan_to_point(self.p);
                        let href = if node.is_leaf {
                            HeapRef::Item(e.child)
                        } else {
                            HeapRef::Node(e.child)
                        };
                        self.heap.push(Reverse((d, href)));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_items(nx: i64, ny: i64, w: i64) -> Vec<(Rect, i64)> {
        let mut v = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                v.push((
                    Rect::new(i * w, j * w, i * w + w / 2, j * w + w / 2),
                    i * ny + j,
                ));
            }
        }
        v
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u8> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.query(&Rect::new(0, 0, 100, 100)).count(), 0);
        assert_eq!(t.nearest(Point::ORIGIN, 5).count(), 0);
    }

    #[test]
    fn insert_then_query() {
        let mut t = RTree::new();
        for (r, v) in grid_items(10, 10, 100) {
            t.insert(r, v);
        }
        assert_eq!(t.len(), 100);
        // Window covering the 4 lower-left cells' rects.
        let hits: Vec<i64> = t
            .query(&Rect::new(0, 0, 150, 150))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(hits.len(), 4);
        // Full-cover query returns everything exactly once.
        assert_eq!(t.query(&Rect::new(-1, -1, 2000, 2000)).count(), 100);
        // Empty window.
        assert_eq!(t.query(&Rect::new(60, 60, 99, 99)).count(), 0);
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let items = grid_items(17, 13, 50);
        let bulk = RTree::bulk_load(items.clone());
        let mut inc = RTree::new();
        for (r, v) in items {
            inc.insert(r, v);
        }
        for window in [
            Rect::new(0, 0, 130, 130),
            Rect::new(200, 100, 500, 400),
            Rect::new(-50, -50, 2000, 2000),
        ] {
            let mut a: Vec<i64> = bulk.query(&window).map(|(_, v)| *v).collect();
            let mut b: Vec<i64> = inc.query(&window).map(|(_, v)| *v).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "window {window}");
        }
    }

    #[test]
    fn nearest_orders_by_manhattan_distance() {
        let tree = RTree::bulk_load(grid_items(10, 10, 100));
        let got: Vec<Dbu> = tree
            .nearest(Point::new(25, 25), 5)
            .map(|(_, _, d)| d)
            .collect();
        assert_eq!(got.len(), 5);
        assert!(
            got.windows(2).all(|w| w[0] <= w[1]),
            "distances non-decreasing: {got:?}"
        );
        assert_eq!(got[0], 0, "query point is inside item (0,0)");
    }

    #[test]
    fn nearest_k_larger_than_len() {
        let tree = RTree::bulk_load(grid_items(2, 2, 10));
        assert_eq!(tree.nearest(Point::ORIGIN, 100).count(), 4);
    }

    #[test]
    fn remove_specific_value() {
        let mut t = RTree::new();
        let r = Rect::new(0, 0, 10, 10);
        t.insert(r, 1);
        t.insert(r, 2);
        assert_eq!(t.remove_if(&r, |v| *v == 2), Some(2));
        assert_eq!(t.len(), 1);
        let left: Vec<i32> = t.query(&r.inflated(1)).map(|(_, v)| *v).collect();
        assert_eq!(left, vec![1]);
        assert_eq!(t.remove_if(&r, |v| *v == 2), None);
        // Freed slot is reused.
        t.insert(Rect::new(5, 5, 6, 6), 7);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_then_reinsert_keeps_queries_consistent() {
        let items = grid_items(8, 8, 40);
        let mut t = RTree::bulk_load(items.clone());
        for (r, v) in items.iter().take(30) {
            assert_eq!(t.remove_if(r, |x| x == v), Some(*v));
        }
        for (r, v) in items.iter().take(30) {
            t.insert(*r, *v);
        }
        assert_eq!(t.len(), 64);
        assert_eq!(t.query(&Rect::new(-1, -1, 10_000, 10_000)).count(), 64);
    }

    #[test]
    fn count_overlapping() {
        let t = RTree::bulk_load(grid_items(4, 4, 10));
        assert_eq!(t.count_overlapping(&Rect::new(0, 0, 11, 11)), 4);
    }

    #[test]
    fn iter_visits_all() {
        let t = RTree::bulk_load(grid_items(3, 3, 10));
        assert_eq!(t.iter().count(), 9);
    }
}
