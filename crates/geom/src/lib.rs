//! Geometry primitives and spatial indexing for the RL-Legalizer reproduction.
//!
//! This crate provides the low-level building blocks used throughout the
//! workspace:
//!
//! - [`Point`] and [`Rect`] — integer (database-unit) geometry with the usual
//!   set algebra (intersection, union, containment, Manhattan distances),
//! - [`rtree::RTree`] — an R-tree spatial index (STR bulk load + quadratic
//!   split insertion) replacing the Boost R-tree the paper used for feature
//!   extraction and overlap queries.
//!
//! All coordinates are `i64` database units (1 dbu = 1 nm in the built-in
//! technologies), so arithmetic is exact and `Ord`-able.
//!
//! # Example
//!
//! ```
//! use rlleg_geom::{Point, Rect, rtree::RTree};
//!
//! let a = Rect::new(0, 0, 10, 10);
//! let b = Rect::new(5, 5, 20, 20);
//! assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 10, 10)));
//!
//! let mut tree: RTree<u32> = RTree::new();
//! tree.insert(a, 1);
//! tree.insert(b, 2);
//! let hits: Vec<_> = tree.query(&Rect::new(0, 0, 6, 6)).map(|(_, v)| *v).collect();
//! assert_eq!(hits.len(), 2);
//! assert!(a.contains_point(Point::new(3, 3)));
//! ```

#![warn(missing_docs)]

mod point;
mod rect;
pub mod rtree;

pub use point::Point;
pub use rect::Rect;

/// Database units (1 dbu = 1 nm in the built-in technologies).
///
/// A plain alias rather than a newtype: the whole workspace manipulates dbu
/// arithmetic heavily and the alias keeps call sites readable without
/// ceremony, while the name still documents intent in signatures.
pub type Dbu = i64;
