use serde::{Deserialize, Serialize};

use crate::{Dbu, Point};

/// An axis-aligned rectangle in database units.
///
/// The rectangle is half-open in spirit: `lo` is inclusive, `hi` is
/// exclusive for area/overlap purposes, which matches how placement rows and
/// pixels tile the core without double counting shared edges. Two rectangles
/// that merely touch do **not** [`overlap`](Rect::overlaps).
///
/// Invariant: `lo.x <= hi.x && lo.y <= hi.y` (enforced by [`Rect::new`]).
///
/// ```
/// use rlleg_geom::Rect;
/// let r = Rect::new(0, 0, 4, 2);
/// assert_eq!(r.area(), 8);
/// assert!(!r.overlaps(&Rect::new(4, 0, 8, 2))); // touching, not overlapping
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner (inclusive).
    pub lo: Point,
    /// Upper-right corner (exclusive for overlap/area purposes).
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `x1 > x2` or `y1 > y2`.
    pub fn new(x1: Dbu, y1: Dbu, x2: Dbu, y2: Dbu) -> Self {
        assert!(
            x1 <= x2 && y1 <= y2,
            "degenerate rect ({x1},{y1})-({x2},{y2})"
        );
        Self {
            lo: Point::new(x1, y1),
            hi: Point::new(x2, y2),
        }
    }

    /// Creates a rectangle from a lower-left origin and a size.
    pub fn with_size(origin: Point, width: Dbu, height: Dbu) -> Self {
        Rect::new(origin.x, origin.y, origin.x + width, origin.y + height)
    }

    /// Width (`hi.x - lo.x`).
    pub fn width(&self) -> Dbu {
        self.hi.x - self.lo.x
    }

    /// Height (`hi.y - lo.y`).
    pub fn height(&self) -> Dbu {
        self.hi.y - self.lo.y
    }

    /// Area in square database units.
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// `true` when the rectangle has zero area.
    pub fn is_empty(&self) -> bool {
        self.width() == 0 || self.height() == 0
    }

    /// Geometric center, rounded toward `lo`.
    pub fn center(&self) -> Point {
        Point::new(self.lo.x + self.width() / 2, self.lo.y + self.height() / 2)
    }

    /// `true` if the interiors of `self` and `other` intersect.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.lo.x < other.hi.x
            && other.lo.x < self.hi.x
            && self.lo.y < other.hi.y
            && other.lo.y < self.hi.y
    }

    /// The intersection of the two rectangles, or `None` if their interiors
    /// are disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Rect::new(
            self.lo.x.max(other.lo.x),
            self.lo.y.max(other.lo.y),
            self.hi.x.min(other.hi.x),
            self.hi.y.min(other.hi.y),
        ))
    }

    /// Area of the intersection (zero when disjoint).
    pub fn overlap_area(&self, other: &Rect) -> i64 {
        self.intersection(other).map_or(0, |r| r.area())
    }

    /// Smallest rectangle covering both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.lo.x.min(other.lo.x),
            self.lo.y.min(other.lo.y),
            self.hi.x.max(other.hi.x),
            self.hi.y.max(other.hi.y),
        )
    }

    /// `true` if `other` lies entirely inside `self` (boundaries may touch).
    pub fn contains(&self, other: &Rect) -> bool {
        self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && self.hi.x >= other.hi.x
            && self.hi.y >= other.hi.y
    }

    /// `true` if `p` lies inside the half-open rectangle.
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x < self.hi.x && p.y >= self.lo.y && p.y < self.hi.y
    }

    /// Manhattan distance from `p` to the rectangle (zero if inside).
    ///
    /// Used by the feature extractor for the "distance to the nearest
    /// obstacle" feature (`OD` in Table I of the paper).
    pub fn manhattan_to_point(&self, p: Point) -> Dbu {
        let dx = if p.x < self.lo.x {
            self.lo.x - p.x
        } else if p.x > self.hi.x {
            p.x - self.hi.x
        } else {
            0
        };
        let dy = if p.y < self.lo.y {
            self.lo.y - p.y
        } else if p.y > self.hi.y {
            p.y - self.hi.y
        } else {
            0
        };
        dx + dy
    }

    /// The rectangle translated by `(dx, dy)`.
    pub fn translated(&self, dx: Dbu, dy: Dbu) -> Rect {
        Rect::new(
            self.lo.x + dx,
            self.lo.y + dy,
            self.hi.x + dx,
            self.hi.y + dy,
        )
    }

    /// The rectangle grown by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if a negative margin would invert the rectangle.
    pub fn inflated(&self, margin: Dbu) -> Rect {
        Rect::new(
            self.lo.x - margin,
            self.lo.y - margin,
            self.hi.x + margin,
            self.hi.y + margin,
        )
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} - {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_measures() {
        let r = Rect::new(-2, -3, 4, 5);
        assert_eq!(r.width(), 6);
        assert_eq!(r.height(), 8);
        assert_eq!(r.area(), 48);
        assert_eq!(r.center(), Point::new(1, 1));
        assert!(!r.is_empty());
        assert!(Rect::new(0, 0, 0, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn inverted_rect_panics() {
        let _ = Rect::new(5, 0, 0, 1);
    }

    #[test]
    fn overlap_semantics_are_open() {
        let a = Rect::new(0, 0, 10, 10);
        assert!(
            !a.overlaps(&Rect::new(10, 0, 20, 10)),
            "touching edges do not overlap"
        );
        assert!(!a.overlaps(&Rect::new(0, 10, 10, 20)));
        assert!(a.overlaps(&Rect::new(9, 9, 20, 20)));
        assert_eq!(a.overlap_area(&Rect::new(5, 5, 15, 15)), 25);
        assert_eq!(a.overlap_area(&Rect::new(50, 50, 60, 60)), 0);
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, -5, 15, 5);
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 0, 10, 5)));
        assert_eq!(a.union(&b), Rect::new(0, -5, 15, 10));
        assert_eq!(a.intersection(&Rect::new(20, 20, 30, 30)), None);
    }

    #[test]
    fn containment() {
        let outer = Rect::new(0, 0, 100, 100);
        assert!(outer.contains(&Rect::new(0, 0, 100, 100)));
        assert!(outer.contains(&Rect::new(10, 10, 20, 20)));
        assert!(!outer.contains(&Rect::new(90, 90, 110, 100)));
        assert!(outer.contains_point(Point::new(0, 0)));
        assert!(
            !outer.contains_point(Point::new(100, 0)),
            "hi edge is exclusive"
        );
    }

    #[test]
    fn manhattan_distance_to_point() {
        let r = Rect::new(10, 10, 20, 20);
        assert_eq!(r.manhattan_to_point(Point::new(15, 15)), 0);
        assert_eq!(r.manhattan_to_point(Point::new(0, 15)), 10);
        assert_eq!(r.manhattan_to_point(Point::new(25, 25)), 10);
        assert_eq!(r.manhattan_to_point(Point::new(0, 0)), 20);
    }

    #[test]
    fn transforms() {
        let r = Rect::new(0, 0, 4, 4);
        assert_eq!(r.translated(1, -1), Rect::new(1, -1, 5, 3));
        assert_eq!(r.inflated(2), Rect::new(-2, -2, 6, 6));
        assert_eq!(
            Rect::with_size(Point::new(3, 3), 2, 5),
            Rect::new(3, 3, 5, 8)
        );
    }
}
