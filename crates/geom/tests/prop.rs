//! Property-based tests for rectangle algebra and the R-tree.

use proptest::prelude::*;
use rlleg_geom::{rtree::RTree, Point, Rect};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-500i64..500, -500i64..500, 1i64..200, 1i64..200)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #[test]
    fn intersection_is_commutative(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.overlap_area(&b), b.overlap_area(&a));
    }

    #[test]
    fn intersection_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains(&i));
            prop_assert!(b.contains(&i));
            prop_assert!(i.area() > 0);
        }
    }

    #[test]
    fn union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
        prop_assert!(u.area() >= a.area().max(b.area()));
    }

    #[test]
    fn overlap_iff_positive_intersection_area(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.overlaps(&b), a.overlap_area(&b) > 0);
    }

    #[test]
    fn manhattan_to_point_zero_iff_inside_closed_rect(
        r in arb_rect(),
        x in -800i64..800,
        y in -800i64..800,
    ) {
        let p = Point::new(x, y);
        let inside_closed =
            x >= r.lo.x && x <= r.hi.x && y >= r.lo.y && y <= r.hi.y;
        prop_assert_eq!(r.manhattan_to_point(p) == 0, inside_closed);
    }

    #[test]
    fn rtree_query_matches_brute_force(
        rects in prop::collection::vec(arb_rect(), 0..120),
        window in arb_rect(),
    ) {
        let items: Vec<(Rect, usize)> =
            rects.iter().copied().enumerate().map(|(i, r)| (r, i)).collect();
        let tree = RTree::bulk_load(items);
        let mut got: Vec<usize> = tree.query(&window).map(|(_, v)| *v).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.overlaps(&window))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rtree_incremental_query_matches_brute_force(
        rects in prop::collection::vec(arb_rect(), 0..120),
        window in arb_rect(),
    ) {
        let mut tree = RTree::new();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i);
        }
        let mut got: Vec<usize> = tree.query(&window).map(|(_, v)| *v).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.overlaps(&window))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rtree_nearest_matches_brute_force(
        rects in prop::collection::vec(arb_rect(), 1..80),
        x in -800i64..800,
        y in -800i64..800,
        k in 1usize..10,
    ) {
        let p = Point::new(x, y);
        let items: Vec<(Rect, usize)> =
            rects.iter().copied().enumerate().map(|(i, r)| (r, i)).collect();
        let tree = RTree::bulk_load(items);
        let got: Vec<i64> = tree.nearest(p, k).map(|(_, _, d)| d).collect();
        let mut want: Vec<i64> = rects.iter().map(|r| r.manhattan_to_point(p)).collect();
        want.sort_unstable();
        want.truncate(k);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rtree_remove_all_leaves_empty(rects in prop::collection::vec(arb_rect(), 0..60)) {
        let mut tree = RTree::new();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i);
        }
        for (i, r) in rects.iter().enumerate() {
            prop_assert_eq!(tree.remove_if(r, |v| *v == i), Some(i));
        }
        prop_assert!(tree.is_empty());
        prop_assert_eq!(tree.query(&Rect::new(-1000, -1000, 1000, 1000)).count(), 0);
    }
}
