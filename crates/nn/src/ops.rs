//! Free-standing numeric operations: softmax, entropy, smooth-L1, and
//! feature-wise L2 normalization.

/// Numerically stable softmax over a logit vector.
///
/// Returns a uniform distribution for an empty input's length-0 vector.
///
/// ```
/// use rlleg_nn::ops::softmax;
/// let p = softmax(&[1.0, 1.0, 1.0]);
/// assert!((p[0] - 1.0 / 3.0).abs() < 1e-6);
/// ```
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// [`softmax`] computed in place, avoiding the intermediate allocation.
///
/// Per-step action sampling in training and inference calls this in the
/// hot loop; the separate exp/sum passes match [`softmax`] exactly, so the
/// two variants are interchangeable bit for bit.
pub fn softmax_in_place(logits: &mut [f32]) {
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
    }
    let sum: f32 = logits.iter().sum();
    for v in logits.iter_mut() {
        *v /= sum;
    }
}

/// Shannon entropy `−Σ p·ln p` of a probability vector (0·ln 0 = 0).
pub fn entropy(probs: &[f32]) -> f32 {
    -probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f32>()
}

/// Smooth-L1 (Huber, δ=1) loss between a prediction and a target.
///
/// The paper uses smooth-L1 for the value loss (Eq. 7) because it is
/// differentiable everywhere and robust to outlier returns.
pub fn smooth_l1(pred: f32, target: f32) -> f32 {
    let d = pred - target;
    if d.abs() < 1.0 {
        0.5 * d * d
    } else {
        d.abs() - 0.5
    }
}

/// Derivative of [`smooth_l1`] with respect to `pred`.
pub fn smooth_l1_grad(pred: f32, target: f32) -> f32 {
    let d = pred - target;
    d.clamp(-1.0, 1.0)
}

/// Feature-wise L2 normalization: divides each column of the `rows × cols`
/// row-major matrix by that column's L2 norm (columns with zero norm are
/// left unchanged).
///
/// The paper normalizes each of the 13 features across cells this way so
/// features with different units become *relative* quantities
/// (Sec. III-D).
pub fn l2_normalize_columns(data: &mut [f32], cols: usize) {
    if cols == 0 || data.is_empty() {
        return;
    }
    let rows = data.len() / cols;
    debug_assert_eq!(rows * cols, data.len());
    for c in 0..cols {
        let norm: f32 = (0..rows)
            .map(|r| data[r * cols + c] * data[r * cols + c])
            .sum::<f32>()
            .sqrt();
        if norm > 0.0 {
            for r in 0..rows {
                data[r * cols + c] /= norm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_properties() {
        let p = softmax(&[0.0, 1.0, 2.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability under large logits.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(softmax(&[]).is_empty());
        // Shift invariance.
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[11.0, 12.0, 13.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_in_place_is_bit_identical_to_softmax() {
        let logits = [0.25f32, -3.0, 7.5, 0.0, 1e3];
        let reference = softmax(&logits);
        let mut buf = logits;
        softmax_in_place(&mut buf);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&buf), bits(&reference));
        let mut empty: [f32; 0] = [];
        softmax_in_place(&mut empty);
    }

    #[test]
    fn entropy_extremes() {
        assert!(
            entropy(&[1.0, 0.0]).abs() < 1e-9,
            "deterministic => 0 entropy"
        );
        let uniform = entropy(&[0.25; 4]);
        assert!((uniform - (4.0f32).ln()).abs() < 1e-6);
        assert!(entropy(&softmax(&[0.0, 3.0])) < uniform);
    }

    #[test]
    fn smooth_l1_shape() {
        assert_eq!(smooth_l1(1.0, 1.0), 0.0);
        assert!(
            (smooth_l1(1.5, 1.0) - 0.125).abs() < 1e-7,
            "quadratic inside"
        );
        assert!((smooth_l1(5.0, 1.0) - 3.5).abs() < 1e-7, "linear outside");
        // Gradient saturates at ±1.
        assert_eq!(smooth_l1_grad(10.0, 0.0), 1.0);
        assert_eq!(smooth_l1_grad(-10.0, 0.0), -1.0);
        assert!((smooth_l1_grad(0.3, 0.0) - 0.3).abs() < 1e-7);
    }

    #[test]
    fn l2_normalize() {
        // Two rows, two features: feature 0 = (3,4), feature 1 = (0,0).
        let mut data = vec![3.0, 0.0, 4.0, 0.0];
        l2_normalize_columns(&mut data, 2);
        assert!((data[0] - 0.6).abs() < 1e-6);
        assert!((data[2] - 0.8).abs() < 1e-6);
        assert_eq!(data[1], 0.0, "zero column untouched");
        // Norm of each column is 1 afterwards.
        let n0 = (data[0] * data[0] + data[2] * data[2]).sqrt();
        assert!((n0 - 1.0).abs() < 1e-6);
    }
}
