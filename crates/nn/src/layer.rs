use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// A fully-connected layer `y = x·Wᵀ + b` with cached activations for
/// backpropagation and accumulated gradients for mini-batch training.
///
/// Weights are stored `out × in`; inputs are `N × in` (one row per cell in
/// the paper's cell-wise networks, so the same parameters process every cell
/// in parallel).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    w: Matrix,
    b: Vec<f32>,
    #[serde(skip)]
    gw: Option<Matrix>,
    #[serde(skip)]
    gb: Vec<f32>,
    #[serde(skip)]
    cached_input: Option<Matrix>,
}

impl Linear {
    /// Creates a layer with Kaiming-uniform initialization
    /// (`U(±sqrt(6/fan_in))`), the PyTorch default for `nn.Linear` trunks.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let bound = (6.0 / in_dim as f32).sqrt();
        let mut w = Matrix::zeros(out_dim, in_dim);
        for v in w.as_mut_slice() {
            *v = rng.gen_range(-bound..bound);
        }
        Self {
            w,
            b: vec![0.0; out_dim],
            gw: None,
            gb: vec![0.0; out_dim],
            cached_input: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Forward pass; caches the input for the next [`backward`](Self::backward).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let y = self.affine(x);
        self.cached_input = Some(x.clone());
        y
    }

    /// Forward pass without caching (inference).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        self.affine(x)
    }

    /// `x·Wᵀ + b` with the bias broadcast row-wise.
    fn affine(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul_t(&self.w);
        let out = self.b.len();
        for orow in y.as_mut_slice().chunks_exact_mut(out) {
            for (o, &b) in orow.iter_mut().zip(&self.b) {
                *o += b;
            }
        }
        y
    }

    /// Backward pass: accumulates `∂L/∂W`, `∂L/∂b` and returns `∂L/∂x`.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`forward`](Self::forward).
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self.cached_input.take().expect("backward without forward");
        // gw += grad_outᵀ · x   (out×in)
        let gw_step = grad_out.t_matmul(&x);
        match &mut self.gw {
            Some(gw) => {
                for (g, s) in gw.as_mut_slice().iter_mut().zip(gw_step.as_slice()) {
                    *g += s;
                }
            }
            None => self.gw = Some(gw_step),
        }
        for r in 0..grad_out.rows() {
            for (gb, &g) in self.gb.iter_mut().zip(grad_out.row(r)) {
                *gb += g;
            }
        }
        grad_out.matmul(&self.w)
    }

    /// Clears accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.gw = None;
        for g in &mut self.gb {
            *g = 0.0;
        }
    }

    /// Visits `(params, grads)` flat slices: first weights, then biases.
    pub fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &[f32])) {
        let gw = self
            .gw
            .get_or_insert_with(|| Matrix::zeros(self.w.rows(), self.w.cols()))
            .as_slice()
            .to_vec();
        f(self.w.as_mut_slice(), &gw);
        let gb = self.gb.clone();
        f(&mut self.b, &gb);
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }
}

/// ReLU activation with the backward mask cached from the forward pass.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; caches the activation mask.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.mask = x.as_slice().iter().map(|&v| v > 0.0).collect();
        let mut y = x.clone();
        y.map_inplace(|v| v.max(0.0));
        y
    }

    /// Forward pass without caching (inference).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut y = x.clone();
        y.map_inplace(|v| v.max(0.0));
        y
    }

    /// Backward pass through the cached mask.
    ///
    /// # Panics
    ///
    /// Panics when the gradient shape does not match the cached forward.
    pub fn backward(&self, grad_out: &Matrix) -> Matrix {
        assert_eq!(
            grad_out.as_slice().len(),
            self.mask.len(),
            "relu backward shape"
        );
        let mut g = grad_out.clone();
        for (v, &m) in g.as_mut_slice().iter_mut().zip(&self.mask) {
            if !m {
                *v = 0.0;
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn linear_forward_matches_manual() {
        let mut l = Linear::new(2, 3, &mut rng());
        // Overwrite with known weights.
        l.w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        l.b = vec![0.5, -0.5, 0.0];
        let x = Matrix::from_rows(&[&[2.0, 3.0]]);
        let y = l.forward(&x);
        assert_eq!(y.as_slice(), &[2.5, 2.5, 5.0]);
        assert_eq!(l.forward_inference(&x).as_slice(), &[2.5, 2.5, 5.0]);
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut l = Linear::new(3, 2, &mut rng());
        let x = Matrix::from_rows(&[&[0.3, -0.7, 1.1], &[0.2, 0.5, -0.4]]);
        // Loss = sum of outputs; dL/dy = ones.
        let y = l.forward(&x);
        let ones = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        let gx = l.backward(&ones);

        // Finite-difference check for one weight and one input element.
        let eps = 1e-3f32;
        let sum = |m: &Matrix| m.as_slice().iter().sum::<f32>();
        let base = sum(&l.forward_inference(&x));
        l.w[(1, 2)] += eps;
        let bumped = sum(&l.forward_inference(&x));
        l.w[(1, 2)] -= eps;
        let num_grad = (bumped - base) / eps;
        // Analytic: gw accumulated in visit()
        let mut grads = Vec::new();
        l.visit(&mut |_, g| grads.push(g.to_vec()));
        let gw = &grads[0];
        let analytic = gw[3 + 2];
        assert!(
            (num_grad - analytic).abs() < 1e-2,
            "{num_grad} vs {analytic}"
        );

        // Input gradient: dL/dx[0,0] = sum_k w[k,0]
        let expect = l.w[(0, 0)] + l.w[(1, 0)];
        assert!((gx[(0, 0)] - expect).abs() < 1e-5);
    }

    #[test]
    fn gradient_accumulation_and_zeroing() {
        let mut l = Linear::new(2, 2, &mut rng());
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        let g = Matrix::from_rows(&[&[1.0, 1.0]]);
        for _ in 0..3 {
            let _ = l.forward(&x);
            let _ = l.backward(&g);
        }
        let mut gb_sum = 0.0;
        l.visit(&mut |_, grads| gb_sum += grads.iter().sum::<f32>());
        assert!(
            (gb_sum - (3.0 * 4.0 + 3.0 * 2.0)).abs() < 1e-4,
            "3 accumulations"
        );
        l.zero_grads();
        let mut total = 0.0;
        l.visit(&mut |_, grads| total += grads.iter().map(|g| g.abs()).sum::<f32>());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn relu_masks_backward() {
        let mut r = Relu::new();
        let x = Matrix::from_rows(&[&[-1.0, 2.0, 0.0]]);
        let y = r.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0]);
        let g = r.backward(&Matrix::from_rows(&[&[5.0, 5.0, 5.0]]));
        assert_eq!(g.as_slice(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn num_params() {
        let l = Linear::new(13, 256, &mut rng());
        assert_eq!(l.num_params(), 13 * 256 + 256);
    }
}
