use serde::{Deserialize, Serialize};

/// Row count at which [`Matrix::matmul`] / [`Matrix::matmul_t`] switch from
/// the naive loops to the register-tiled kernel.
///
/// Per-state inference matrices have 2–13 rows (one per movable cell in a
/// subepisode window) and stay on the naive path where tile setup would
/// dominate; batched evaluation over hundreds of states crosses this
/// threshold and gets the tiled kernel.
pub const BLOCKED_MIN_ROWS: usize = 16;

/// A dense row-major `f32` matrix.
///
/// This is the only tensor type the workspace needs: states are `N×F`
/// matrices (N cells, F features) and every layer maps matrices to matrices.
///
/// ```
/// use rlleg_nn::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Stacks matrices with a common column count vertically into one
    /// `(Σ rowsᵢ) × cols` matrix.
    ///
    /// This is the batching primitive: stacking many per-state matrices
    /// and running one forward pushes the row count past
    /// [`BLOCKED_MIN_ROWS`], so the whole batch goes through the
    /// register-tiled kernel instead of many naive small products — with
    /// bit-identical per-row results, because the tiled and naive kernels
    /// produce identical sums for every row independently.
    ///
    /// # Panics
    ///
    /// Panics when `mats` is empty or the column counts disagree.
    pub fn stack(mats: &[&Matrix]) -> Self {
        assert!(!mats.is_empty(), "stack needs at least one matrix");
        let cols = mats[0].cols;
        let total: usize = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(total * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "stack: column mismatch");
            data.extend_from_slice(&m.data);
        }
        Self {
            rows: total,
            cols,
            data,
        }
    }

    /// Overwrites this matrix with `rows × cols` values from `data`,
    /// reusing the existing allocation when it is large enough.
    ///
    /// Hot loops that recompute a same-shaped matrix every step (the
    /// masked-mode trainer's bootstrap states) use this instead of
    /// building a fresh [`Matrix::from_vec`] per step.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn copy_from(&mut self, rows: usize, cols: usize, data: &[f32]) {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.extend_from_slice(data);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// Large products transpose `rhs` once and run the register-tiled
    /// kernel of [`matmul_t`](Self::matmul_t); small ones (fewer than
    /// [`BLOCKED_MIN_ROWS`] rows) fall through to
    /// [`matmul_naive`](Self::matmul_naive), where the transpose cost and
    /// tile bookkeeping would dominate.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        if self.rows < BLOCKED_MIN_ROWS {
            return self.matmul_naive(rhs);
        }
        // Pack rhsᵀ (cols × rows, row-major) so every dot product in the
        // tiled kernel streams both operands contiguously.
        let mut rt = Matrix::zeros(rhs.cols, rhs.rows);
        for r in 0..rhs.rows {
            let brow = &rhs.data[r * rhs.cols..(r + 1) * rhs.cols];
            for (c, &b) in brow.iter().enumerate() {
                rt.data[c * rhs.rows + r] = b;
            }
        }
        self.matmul_t_blocked(&rt, 0.0)
    }

    /// Reference `self · rhs`: the straightforward ikj triple loop, kept as
    /// the test oracle for the tiled kernel behind
    /// [`matmul`](Self::matmul).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: stream rhs rows, decent cache behaviour without
        // blocking.
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in arow.iter().enumerate() {
                let brow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `selfᵀ · rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "t_matmul row mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let arow = &self.data[r * self.cols..(r + 1) * self.cols];
            let brow = &rhs.data[r * rhs.cols..(r + 1) * rhs.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self · rhsᵀ` without materializing the transpose.
    ///
    /// This is the inference hot path (`Linear` stores weights `out × in`,
    /// so every forward is an `x · Wᵀ`). Products with at least
    /// [`BLOCKED_MIN_ROWS`] rows run a 4×4 register-tiled kernel; smaller
    /// ones (per-state forwards are 2–13 rows) use the plain dot-product
    /// loops of [`matmul_t_naive`](Self::matmul_t_naive). Both paths
    /// accumulate each output element over `k` in ascending order starting
    /// from zero, so they produce bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_t col mismatch");
        if self.rows < BLOCKED_MIN_ROWS {
            return self.matmul_t_naive(rhs);
        }
        self.matmul_t_blocked(rhs, -0.0)
    }

    /// Reference `self · rhsᵀ`: one dot product per output element, kept as
    /// the test oracle (and small-input path) for
    /// [`matmul_t`](Self::matmul_t).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn matmul_t_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_t col mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs.rows {
                let brow = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                out.data[i * rhs.rows + j] = arow.iter().zip(brow).map(|(a, b)| a * b).sum();
            }
        }
        out
    }

    /// 4×4 register-tiled `self · rhsᵀ`.
    ///
    /// Each tile keeps 16 independent accumulators live across the whole
    /// `k` sweep, turning the latency-bound single-accumulator dot product
    /// of the naive loop into 16 parallel dependency chains while both
    /// operand rows stream contiguously. Per output element the additions
    /// still happen in ascending `k` order, so the result is bit-identical
    /// to the matching naive kernel — provided `init` matches the naive
    /// accumulator identity: `f32`'s `sum()` folds from `-0.0` (preserving
    /// all-negative-zero sums), while `matmul_naive`'s `+=`-into-zeros
    /// starts at `+0.0`. Edge tiles replicate their last row; the duplicate
    /// accumulators are simply not written back.
    fn matmul_t_blocked(&self, rhs: &Matrix, init: f32) -> Matrix {
        const MR: usize = 4;
        const NR: usize = 4;
        let (m, n, k) = (self.rows, rhs.rows, self.cols);
        let mut out = Matrix::zeros(m, n);
        fn row(d: &[f32], r: usize, k: usize) -> &[f32] {
            &d[r * k..(r + 1) * k]
        }
        let mut i = 0;
        while i < m {
            let mh = MR.min(m - i);
            let ar: [&[f32]; MR] = std::array::from_fn(|ii| row(&self.data, i + ii.min(mh - 1), k));
            let mut j = 0;
            while j < n {
                let nh = NR.min(n - j);
                let br: [&[f32]; NR] =
                    std::array::from_fn(|jj| row(&rhs.data, j + jj.min(nh - 1), k));
                let mut acc = [[init; NR]; MR];
                for p in 0..k {
                    let b = [br[0][p], br[1][p], br[2][p], br[3][p]];
                    for (ii, arow) in ar.iter().enumerate() {
                        let a = arow[p];
                        for (jj, &bv) in b.iter().enumerate() {
                            acc[ii][jj] += a * bv;
                        }
                    }
                }
                for (ii, acc_row) in acc.iter().enumerate().take(mh) {
                    let orow = &mut out.data[(i + ii) * n + j..(i + ii) * n + j + nh];
                    orow.copy_from_slice(&acc_row[..nh]);
                }
                j += nh;
            }
            i += mh;
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        let z = Matrix::zeros(2, 2);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transposed_products_agree_with_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        // aᵀ is 3x2; aᵀ·(2x?) needs rhs with 2 rows.
        let c = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 1.0]]);
        let t1 = a.t_matmul(&c); // 3x2
        assert_eq!(t1.rows(), 3);
        assert_eq!(t1[(0, 0)], 1.0 * 2.0 + 4.0 * 0.0);
        let t2 = a.matmul_t(&Matrix::from_rows(&[&[1.0, 1.0, 1.0]])); // 2x1
        assert_eq!(t2[(0, 0)], 6.0);
        assert_eq!(t2[(1, 0)], 15.0);
        let _ = b; // silence
    }

    #[test]
    fn map_inplace() {
        let mut m = Matrix::from_rows(&[&[-1.0, 2.0]]);
        m.map_inplace(|v| v.max(0.0));
        assert_eq!(m.as_slice(), &[0.0, 2.0]);
    }

    /// Deterministic pseudo-random matrix (xorshift; no rand dependency in
    /// unit tests).
    fn ramp(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed | 1;
        let data = (0..rows * cols)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 2000) as f32 / 100.0 - 10.0
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    fn assert_bit_identical(a: &Matrix, b: &Matrix) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_matmul_t_bit_identical_to_naive_with_edge_tiles() {
        // 17 and 6 force partial tiles in both dimensions; 17 ≥
        // BLOCKED_MIN_ROWS so matmul_t takes the tiled kernel.
        let a = ramp(17, 5, 3);
        let b = ramp(6, 5, 11);
        assert!(a.rows() >= BLOCKED_MIN_ROWS);
        assert_bit_identical(&a.matmul_t(&b), &a.matmul_t_naive(&b));
    }

    #[test]
    fn blocked_matmul_bit_identical_to_naive() {
        let a = ramp(21, 7, 5);
        let b = ramp(7, 9, 13);
        assert!(a.rows() >= BLOCKED_MIN_ROWS);
        assert_bit_identical(&a.matmul(&b), &a.matmul_naive(&b));
    }

    #[test]
    fn small_products_stay_on_the_naive_path_and_agree() {
        let a = ramp(3, 8, 17);
        let bt = ramp(5, 8, 19);
        assert_bit_identical(&a.matmul_t(&bt), &a.matmul_t_naive(&bt));
        let b = ramp(8, 4, 23);
        assert_bit_identical(&a.matmul(&b), &a.matmul_naive(&b));
    }

    #[test]
    fn zero_inner_dimension() {
        let a = Matrix::zeros(20, 0);
        let b = Matrix::zeros(6, 0);
        let c = a.matmul_t(&b);
        assert_eq!((c.rows(), c.cols()), (20, 6));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stack_concatenates_rows() {
        let a = ramp(2, 3, 5);
        let b = ramp(4, 3, 7);
        let s = Matrix::stack(&[&a, &b]);
        assert_eq!((s.rows(), s.cols()), (6, 3));
        assert_eq!(s.row(1), a.row(1));
        assert_eq!(s.row(5), b.row(3));
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn stack_rejects_ragged_columns() {
        let a = ramp(2, 3, 5);
        let b = ramp(2, 4, 5);
        let _ = Matrix::stack(&[&a, &b]);
    }

    #[test]
    fn copy_from_reuses_the_allocation() {
        let mut m = ramp(8, 4, 3);
        let cap = m.data.capacity();
        let small = [1.0f32, 2.0, 3.0, 4.0];
        m.copy_from(2, 2, &small);
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m.as_slice(), &small);
        assert_eq!(m.data.capacity(), cap, "no reallocation for smaller fills");
    }
}
