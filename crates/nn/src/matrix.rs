use serde::{Deserialize, Serialize};

/// A dense row-major `f32` matrix.
///
/// This is the only tensor type the workspace needs: states are `N×F`
/// matrices (N cells, F features) and every layer maps matrices to matrices.
///
/// ```
/// use rlleg_nn::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: stream rhs rows, decent cache behaviour without
        // blocking; the networks here are small (≤ 512 wide).
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `selfᵀ · rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "t_matmul row mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let arow = &self.data[r * self.cols..(r + 1) * self.cols];
            let brow = &rhs.data[r * rhs.cols..(r + 1) * rhs.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self · rhsᵀ` without materializing the transpose.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_t col mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs.rows {
                let brow = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                out.data[i * rhs.rows + j] = arow.iter().zip(brow).map(|(a, b)| a * b).sum();
            }
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        let z = Matrix::zeros(2, 2);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transposed_products_agree_with_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        // aᵀ is 3x2; aᵀ·(2x?) needs rhs with 2 rows.
        let c = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 1.0]]);
        let t1 = a.t_matmul(&c); // 3x2
        assert_eq!(t1.rows(), 3);
        assert_eq!(t1[(0, 0)], 1.0 * 2.0 + 4.0 * 0.0);
        let t2 = a.matmul_t(&Matrix::from_rows(&[&[1.0, 1.0, 1.0]])); // 2x1
        assert_eq!(t2[(0, 0)], 6.0);
        assert_eq!(t2[(1, 0)], 15.0);
        let _ = b; // silence
    }

    #[test]
    fn map_inplace() {
        let mut m = Matrix::from_rows(&[&[-1.0, 2.0]]);
        m.map_inplace(|v| v.max(0.0));
        assert_eq!(m.as_slice(), &[0.0, 2.0]);
    }
}
