//! Optimizers and gradient utilities: Adam and global-norm clipping.

use serde::{Deserialize, Serialize};

/// Adam optimizer state over a flat parameter vector.
///
/// The paper trains with Adam (α = 3e-4 after Bayesian optimization) and
/// clips gradients to a global norm of 0.1 for stability (Sec. III-E-3).
///
/// ```
/// use rlleg_nn::optim::Adam;
/// let mut adam = Adam::new(3, 0.1);
/// let mut params = vec![1.0_f32; 3];
/// let grads = vec![1.0_f32; 3];
/// adam.step(&mut params, &grads);
/// assert!(params.iter().all(|&p| p < 1.0), "descends along the gradient");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate α.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability ε.
    pub eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates Adam state for `n` parameters with the standard
    /// β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(n: usize, lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Applies one Adam update of `params` along `grads`.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree with the state size.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "param count mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mh = self.m[i] / b1t;
            let vh = self.v[i] / b2t;
            params[i] -= self.lr * mh / (vh.sqrt() + self.eps);
        }
    }

    /// Number of updates applied so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Captures the full optimizer state for bit-exact checkpointing: the
    /// moment vectors are exported as `f32` bit patterns so the round-trip
    /// is exact even through text formats (and even for non-finite values
    /// a fault-injected run may have produced).
    pub fn to_raw(&self) -> AdamRaw {
        AdamRaw {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            m_bits: self.m.iter().map(|x| x.to_bits()).collect(),
            v_bits: self.v.iter().map(|x| x.to_bits()).collect(),
            t: self.t,
        }
    }

    /// Rebuilds optimizer state captured by [`to_raw`](Self::to_raw).
    pub fn from_raw(raw: &AdamRaw) -> Self {
        Self {
            lr: raw.lr,
            beta1: raw.beta1,
            beta2: raw.beta2,
            eps: raw.eps,
            m: raw.m_bits.iter().map(|&b| f32::from_bits(b)).collect(),
            v: raw.v_bits.iter().map(|&b| f32::from_bits(b)).collect(),
            t: raw.t,
        }
    }
}

/// Serializable bit-exact snapshot of [`Adam`] (see [`Adam::to_raw`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamRaw {
    /// Learning rate α.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability ε.
    pub eps: f32,
    /// First-moment vector as `f32` bit patterns.
    pub m_bits: Vec<u32>,
    /// Second-moment vector as `f32` bit patterns.
    pub v_bits: Vec<u32>,
    /// Updates applied so far.
    pub t: u64,
}

/// Scales `grads` in place so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut [f32], max_norm: f32) -> f32 {
    let norm = grads.iter().map(|g| g * g).sum::<f32>().sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads {
            *g *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize f(x) = (x - 3)^2 from x = 0.
        let mut adam = Adam::new(1, 0.1);
        let mut x = vec![0.0f32];
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn adam_bias_correction_makes_first_step_lr_sized() {
        let mut adam = Adam::new(1, 0.01);
        let mut x = vec![0.0f32];
        adam.step(&mut x, &[5.0]);
        // With bias correction the first step magnitude ≈ lr regardless of g.
        assert!((x[0].abs() - 0.01).abs() < 1e-4, "step was {}", x[0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn adam_checks_sizes() {
        let mut adam = Adam::new(2, 0.1);
        let mut p = vec![0.0f32; 3];
        adam.step(&mut p, &[0.0; 3]);
    }

    #[test]
    fn raw_round_trip_is_bit_exact_and_resumes_identically() {
        let mut a = Adam::new(4, 0.05);
        let mut pa = vec![1.0f32, -2.0, 0.5, 3.0];
        for k in 0..7 {
            let g: Vec<f32> = (0..4).map(|i| (i as f32 + k as f32) * 0.1 - 0.2).collect();
            a.step(&mut pa, &g);
        }
        let raw = a.to_raw();
        let mut b = Adam::from_raw(&raw);
        assert_eq!(a.steps(), b.steps());
        // Continued streams must match bit-for-bit.
        let mut pb = pa.clone();
        for k in 0..5 {
            let g: Vec<f32> = (0..4).map(|i| (i as f32 - k as f32) * 0.3).collect();
            a.step(&mut pa, &g);
            b.step(&mut pb, &g);
        }
        assert_eq!(
            pa.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            pb.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clipping() {
        let mut g = vec![3.0f32, 4.0];
        let pre = clip_global_norm(&mut g, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((post - 1.0).abs() < 1e-6);
        // Below the threshold: untouched.
        let mut g2 = vec![0.3f32, 0.4];
        clip_global_norm(&mut g2, 1.0);
        assert_eq!(g2, vec![0.3, 0.4]);
        // Zero gradient: no NaN.
        let mut g3 = vec![0.0f32; 4];
        clip_global_norm(&mut g3, 0.1);
        assert!(g3.iter().all(|v| v.is_finite()));
    }
}
