//! Sparse linear algebra for the analytical global placer: a CSR matrix,
//! sparse matrix-vector products, and a Jacobi-preconditioned conjugate
//! gradient solver.
//!
//! The placer's per-axis wirelength systems are symmetric positive definite
//! graph Laplacians plus anchor diagonals, so CG with a diagonal (Jacobi)
//! preconditioner converges in a few dozen iterations without any fill-in.
//! Everything here is `f64` and strictly sequential, so solves are
//! bit-deterministic regardless of how many worker threads the rest of the
//! pipeline uses.

/// Compressed sparse row matrix over `f64`.
///
/// Built from unsorted `(row, col, value)` triplets; duplicate entries are
/// summed, which makes Laplacian assembly (`A[i][i] += w; A[i][j] -= w; ...`)
/// a plain triplet push per spring.
#[derive(Debug, Clone)]
pub struct Csr {
    n: usize,
    row_ptr: Vec<u32>,
    col: Vec<u32>,
    val: Vec<f64>,
}

impl Csr {
    /// Builds an `n x n` CSR matrix from triplets, summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of `0..n`.
    pub fn from_triplets(n: usize, triplets: &[(u32, u32, f64)]) -> Csr {
        let mut counts = vec![0u32; n + 1];
        for &(r, c, _) in triplets {
            assert!((r as usize) < n && (c as usize) < n, "triplet out of range");
            counts[r as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut col = vec![0u32; triplets.len()];
        let mut val = vec![0.0f64; triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            let slot = cursor[r as usize] as usize;
            col[slot] = c;
            val[slot] = v;
            cursor[r as usize] += 1;
        }
        // Sort each row by column and merge duplicates in place.
        let mut out_col = Vec::with_capacity(col.len());
        let mut out_val = Vec::with_capacity(val.len());
        let mut row_ptr = vec![0u32; n + 1];
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..n {
            let (lo, hi) = (counts[r] as usize, counts[r + 1] as usize);
            scratch.clear();
            scratch.extend(col[lo..hi].iter().copied().zip(val[lo..hi].iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                i += 1;
                while i < scratch.len() && scratch[i].0 == c {
                    v += scratch[i].1;
                    i += 1;
                }
                out_col.push(c);
                out_val.push(v);
            }
            row_ptr[r + 1] = out_col.len() as u32;
        }
        Csr {
            n,
            row_ptr,
            col: out_col,
            val: out_val,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored non-zero count.
    pub fn nnz(&self) -> usize {
        self.col.len()
    }

    /// `y = A x` (sequential, deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` length differs from `n`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (r, out) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.val[k] * x[self.col[k] as usize];
            }
            *out = acc;
        }
    }

    /// The matrix diagonal (zero where no entry is stored).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for (r, slot) in d.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            for k in lo..hi {
                if self.col[k] as usize == r {
                    *slot = self.val[k];
                }
            }
        }
        d
    }
}

/// Convergence report from [`pcg_solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcgStats {
    /// Iterations actually run.
    pub iterations: usize,
    /// Final relative residual `||b - Ax|| / ||b||` (0 when `b = 0`).
    pub residual: f64,
    /// Whether the relative residual reached the requested tolerance.
    pub converged: bool,
}

/// Solves `A x = b` by Jacobi-preconditioned conjugate gradient, starting
/// from the initial guess already in `x`.
///
/// `A` must be symmetric positive definite (the caller's Laplacian plus
/// anchor diagonals is). Zero diagonal entries fall back to an identity
/// preconditioner row, so a row with no springs simply keeps its initial
/// value when `b` is zero there.
pub fn pcg_solve(a: &Csr, b: &[f64], x: &mut [f64], tol: f64, max_iters: usize) -> PcgStats {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let inv_d: Vec<f64> = a
        .diagonal()
        .iter()
        .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
        .collect();

    let b_norm = norm2(b);
    if b_norm == 0.0 {
        for v in x.iter_mut() {
            *v = 0.0;
        }
        return PcgStats {
            iterations: 0,
            residual: 0.0,
            converged: true,
        };
    }

    let mut r = vec![0.0; n];
    a.spmv(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z: Vec<f64> = r.iter().zip(&inv_d).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    let mut iterations = 0;
    for _ in 0..max_iters {
        let rn = norm2(&r);
        if rn <= tol * b_norm {
            break;
        }
        iterations += 1;
        a.spmv(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            break; // numerically indefinite: keep the best iterate so far
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] * inv_d[i];
        }
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let residual = norm2(&r) / b_norm;
    PcgStats {
        iterations,
        residual,
        converged: residual <= tol,
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_sums_duplicates_and_multiplies() {
        // [[2, -1], [-1, 2]] assembled as spring triplets with duplicates.
        let t = [
            (0, 0, 1.0),
            (0, 0, 1.0),
            (0, 1, -1.0),
            (1, 1, 2.0),
            (1, 0, -1.0),
        ];
        let a = Csr::from_triplets(2, &t);
        assert_eq!(a.nnz(), 4);
        let mut y = vec![0.0; 2];
        a.spmv(&[3.0, 1.0], &mut y);
        assert_eq!(y, vec![5.0, -1.0]);
        assert_eq!(a.diagonal(), vec![2.0, 2.0]);
    }

    #[test]
    fn pcg_solves_laplacian_system() {
        // 1D chain of 5 nodes anchored at both ends: tridiagonal SPD.
        let n = 5;
        let mut t = Vec::new();
        for i in 0..n - 1 {
            let (a, b) = (i as u32, i as u32 + 1);
            t.push((a, a, 1.0));
            t.push((b, b, 1.0));
            t.push((a, b, -1.0));
            t.push((b, a, -1.0));
        }
        t.push((0, 0, 1.0));
        t.push((n as u32 - 1, n as u32 - 1, 1.0));
        let a = Csr::from_triplets(n, &t);
        // Anchors pull node 0 to 0.0 and node 4 to 100.0.
        let b = [0.0, 0.0, 0.0, 0.0, 100.0];
        let mut x = vec![0.0; n];
        let stats = pcg_solve(&a, &b, &mut x, 1e-10, 200);
        assert!(stats.converged, "residual {}", stats.residual);
        // Equilibrium of the chain with unit anchors is linear:
        // x_i = (100 / 6) * (i + 1).
        for (i, &xi) in x.iter().enumerate() {
            let want = 100.0 / 6.0 * (i as f64 + 1.0);
            assert!((xi - want).abs() < 1e-6, "x[{i}] = {xi}, want {want}");
        }
    }

    #[test]
    fn pcg_zero_rhs_returns_zero() {
        let a = Csr::from_triplets(2, &[(0, 0, 2.0), (1, 1, 2.0)]);
        let mut x = vec![5.0, -3.0];
        let stats = pcg_solve(&a, &[0.0, 0.0], &mut x, 1e-12, 10);
        assert!(stats.converged);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn pcg_is_deterministic() {
        let n = 64;
        let mut t = Vec::new();
        for i in 0..n as u32 {
            t.push((i, i, 4.0));
            if i + 1 < n as u32 {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        let a = Csr::from_triplets(n, &t);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        let s1 = pcg_solve(&a, &b, &mut x1, 1e-12, 500);
        let s2 = pcg_solve(&a, &b, &mut x2, 1e-12, 500);
        assert_eq!(s1, s2);
        assert_eq!(
            x1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "solves must be bit-identical"
        );
    }
}
