use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::layer::{Linear, Relu};
use crate::matrix::Matrix;

/// A multi-layer perceptron: `Linear → ReLU → … → Linear` (no activation
/// after the last layer).
///
/// This is the building block of the paper's cell-wise networks (Fig. 4):
/// the shared trunk is `Mlp::new(&[13, 256, 256])`, the policy and value
/// heads are `Mlp::new(&[256, 1])`.
///
/// ```
/// use rlleg_nn::{Mlp, Matrix};
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let mut mlp = Mlp::new(&[4, 8, 2], &mut rng);
/// let x = Matrix::zeros(3, 4);
/// assert_eq!(mlp.forward(&x).cols(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    linears: Vec<Linear>,
    relus: Vec<Relu>,
}

impl Mlp {
    /// Creates an MLP with the given layer widths (`dims.len() - 1` linear
    /// layers, ReLU between them).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn new(dims: &[usize], rng: &mut impl Rng) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let linears = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect::<Vec<_>>();
        let relus = (0..linears.len().saturating_sub(1))
            .map(|_| Relu::new())
            .collect();
        Self { linears, relus }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.linears[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.linears.last().expect("nonempty").out_dim()
    }

    /// Training forward pass (caches activations for [`backward`](Self::backward)).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = self.linears[0].forward(x);
        for i in 0..self.relus.len() {
            h = self.relus[i].forward(&h);
            h = self.linears[i + 1].forward(&h);
        }
        h
    }

    /// Inference forward pass (no caching; usable through `&self`).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut h = self.linears[0].forward_inference(x);
        for i in 0..self.relus.len() {
            h = self.relus[i].forward_inference(&h);
            h = self.linears[i + 1].forward_inference(&h);
        }
        h
    }

    /// Backward pass; accumulates parameter gradients, returns `∂L/∂x`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = self
            .linears
            .last_mut()
            .expect("nonempty")
            .backward(grad_out);
        for i in (0..self.relus.len()).rev() {
            g = self.relus[i].backward(&g);
            g = self.linears[i].backward(&g);
        }
        g
    }

    /// Clears accumulated gradients.
    pub fn zero_grads(&mut self) {
        for l in &mut self.linears {
            l.zero_grads();
        }
    }

    /// Visits `(params, grads)` slices of every layer in a fixed order.
    pub fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &[f32])) {
        for l in &mut self.linears {
            l.visit(f);
        }
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.linears.iter().map(Linear::num_params).sum()
    }

    /// Copies all parameters into a flat vector (matching [`visit`](Self::visit) order).
    pub fn params_flat(&mut self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.visit(&mut |p, _| out.extend_from_slice(p));
        out
    }

    /// Copies all gradients into a flat vector.
    pub fn grads_flat(&mut self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.visit(&mut |_, g| out.extend_from_slice(g));
        out
    }

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != self.num_params()`.
    pub fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.num_params(),
            "parameter vector size mismatch"
        );
        let mut off = 0;
        self.visit(&mut |p, _| {
            p.copy_from_slice(&flat[off..off + p.len()]);
            off += p.len();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn shapes() {
        let mut m = Mlp::new(&[13, 32, 32, 1], &mut rng());
        assert_eq!(m.in_dim(), 13);
        assert_eq!(m.out_dim(), 1);
        let x = Matrix::zeros(5, 13);
        assert_eq!(m.forward(&x).rows(), 5);
        assert_eq!(m.num_params(), 13 * 32 + 32 + 32 * 32 + 32 + 32 + 1);
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut m = Mlp::new(&[4, 8, 3], &mut rng());
        let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3, 0.7], &[1.0, 2.0, -3.0, 0.0]]);
        let a = m.forward(&x);
        let b = m.forward_inference(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn full_network_gradient_check() {
        let mut m = Mlp::new(&[3, 6, 1], &mut rng());
        let x = Matrix::from_rows(&[&[0.5, -0.3, 0.8], &[-0.1, 0.9, 0.2]]);
        // Loss: sum of outputs.
        let y = m.forward(&x);
        let ones = Matrix::from_vec(y.rows(), 1, vec![1.0; y.rows()]);
        let _ = m.backward(&ones);
        let analytic = m.grads_flat();

        let eps = 1e-3f32;
        let loss = |m: &Mlp| m.forward_inference(&x).as_slice().iter().sum::<f32>();
        let mut params = m.params_flat();
        // Spot-check a handful of parameters across layers.
        for &idx in &[0usize, 5, 17, analytic.len() - 1, analytic.len() / 2] {
            let orig = params[idx];
            params[idx] = orig + eps;
            m.set_params_flat(&params);
            let hi = loss(&m);
            params[idx] = orig - eps;
            m.set_params_flat(&params);
            let lo = loss(&m);
            params[idx] = orig;
            m.set_params_flat(&params);
            let num = (hi - lo) / (2.0 * eps);
            assert!(
                (num - analytic[idx]).abs() < 1e-2 * (1.0 + num.abs()),
                "param {idx}: numeric {num} vs analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn params_round_trip() {
        let mut m = Mlp::new(&[4, 5, 2], &mut rng());
        let p = m.params_flat();
        let mut m2 = Mlp::new(&[4, 5, 2], &mut rng());
        m2.set_params_flat(&p);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        assert_eq!(m.forward_inference(&x), m2.forward_inference(&x));
    }

    #[test]
    fn serde_round_trip() {
        let mut m = Mlp::new(&[4, 5, 2], &mut rng());
        let json = serde_json::to_string(&m).expect("serialize");
        let m2: Mlp = serde_json::from_str(&json).expect("deserialize");
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0, 0.1]]);
        assert_eq!(m.forward(&x), m2.forward_inference(&x));
    }
}
