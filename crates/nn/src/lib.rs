//! A minimal, dependency-free neural-network library for the RL-Legalizer
//! reproduction.
//!
//! The Rust ML ecosystem is thin for this use case (a tiny cell-wise MLP
//! trained with a custom actor-critic loss), so the reproduction builds its
//! own stack:
//!
//! - [`Matrix`] — dense row-major `f32` matrices with the handful of
//!   products backprop needs,
//! - [`Linear`] / [`Relu`] / [`Mlp`] — layers with cached-activation
//!   backpropagation and accumulated (mini-batch) gradients,
//! - [`ops`] — softmax, entropy, smooth-L1, feature-wise L2 normalization,
//! - [`optim`] — Adam and global-norm gradient clipping,
//! - [`sparse`] — CSR matrices, SpMV, and a Jacobi-preconditioned conjugate
//!   gradient solver for the global placer's quadratic wirelength systems.
//!
//! Everything is deterministic given a seeded RNG and serializable with
//! serde, so trained policies can be saved and reloaded (the paper trains
//! once and tests with frozen weights).
//!
//! # Example
//!
//! ```
//! use rlleg_nn::{Mlp, Matrix, optim::Adam};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut net = Mlp::new(&[2, 16, 1], &mut rng);
//! let mut adam = Adam::new(net.num_params(), 1e-2);
//! // Fit y = x0 + x1 on a fixed batch.
//! let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
//! let target = [0.0, 1.0, 1.0, 2.0];
//! for _ in 0..200 {
//!     net.zero_grads();
//!     let y = net.forward(&x);
//!     let grad: Vec<f32> = y.as_slice().iter().zip(&target).map(|(p, t)| p - t).collect();
//!     net.backward(&Matrix::from_vec(4, 1, grad));
//!     let g = net.grads_flat();
//!     let mut p = net.params_flat();
//!     adam.step(&mut p, &g);
//!     net.set_params_flat(&p);
//! }
//! let out = net.forward_inference(&x);
//! assert!((out.as_slice()[3] - 2.0).abs() < 0.2);
//! ```

#![warn(missing_docs)]

mod layer;
mod matrix;
mod mlp;
pub mod ops;
pub mod optim;
pub mod sparse;

pub use layer::{Linear, Relu};
pub use matrix::{Matrix, BLOCKED_MIN_ROWS};
pub use mlp::Mlp;
