//! Property-based tests for the NN stack: gradient correctness on random
//! networks and invariants of the numeric ops.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rlleg_nn::{ops, optim::clip_global_norm, Matrix, Mlp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-20.0f32..20.0, 1..32)) {
        let p = ops::softmax(&logits);
        prop_assert_eq!(p.len(), logits.len());
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // argmax preserved
        let am_l = logits.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i);
        let am_p = p.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i);
        prop_assert_eq!(am_l, am_p);
    }

    #[test]
    fn entropy_bounded_by_log_n(logits in prop::collection::vec(-5.0f32..5.0, 1..16)) {
        let p = ops::softmax(&logits);
        let h = ops::entropy(&p);
        prop_assert!(h >= -1e-5);
        prop_assert!(h <= (p.len() as f32).ln() + 1e-4);
    }

    #[test]
    fn smooth_l1_nonnegative_and_symmetric(a in -50.0f32..50.0, b in -50.0f32..50.0) {
        prop_assert!(ops::smooth_l1(a, b) >= 0.0);
        prop_assert!((ops::smooth_l1(a, b) - ops::smooth_l1(b, a)).abs() < 1e-5);
        prop_assert!(ops::smooth_l1_grad(a, b).abs() <= 1.0);
    }

    #[test]
    fn clip_never_increases_norm(mut g in prop::collection::vec(-10.0f32..10.0, 1..64), max in 0.01f32..5.0) {
        let pre: f32 = g.iter().map(|x| x * x).sum::<f32>().sqrt();
        let reported = clip_global_norm(&mut g, max);
        prop_assert!((reported - pre).abs() < 1e-3);
        let post: f32 = g.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(post <= max.max(pre) + 1e-3);
        prop_assert!(post <= max + 1e-3 || pre <= max);
    }

    #[test]
    fn mlp_gradcheck_random_nets(
        seed in 0u64..1000,
        hidden in 2usize..10,
        rows in 1usize..4,
        param_pick in 0usize..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net = Mlp::new(&[3, hidden, 1], &mut rng);
        let x = {
            use rand::Rng;
            let data: Vec<f32> = (0..rows * 3).map(|_| rng.gen_range(-1.0..1.0)).collect();
            Matrix::from_vec(rows, 3, data)
        };
        let _y = net.forward(&x);
        let ones = Matrix::from_vec(rows, 1, vec![1.0; rows]);
        net.backward(&ones);
        let analytic = net.grads_flat();
        let mut params = net.params_flat();
        let idx = param_pick % params.len();
        let eps = 1e-2f32;
        let loss = |m: &Mlp| m.forward_inference(&x).as_slice().iter().sum::<f32>();
        let base = loss(&net);
        let orig = params[idx];
        params[idx] = orig + eps;
        net.set_params_flat(&params);
        let hi = loss(&net);
        params[idx] = orig - eps;
        net.set_params_flat(&params);
        let lo = loss(&net);
        let num = (hi - lo) / (2.0 * eps);
        // Detect ReLU kinks: when the two one-sided derivatives disagree,
        // the finite difference straddles an activation boundary and no
        // agreement with the (one-sided-correct) analytic gradient can be
        // expected — skip those samples.
        let fwd = (hi - base) / eps;
        let bwd = (base - lo) / eps;
        let kink = (fwd - bwd).abs() > 0.1 * (1.0 + fwd.abs().max(bwd.abs()));
        prop_assume!(!kink);
        prop_assert!(
            (num - analytic[idx]).abs() < 0.05 + 0.1 * num.abs().max(analytic[idx].abs()),
            "idx {}: numeric {} vs analytic {}", idx, num, analytic[idx]
        );
    }

    #[test]
    fn matmul_t_bit_identical_across_kernel_paths(
        m in 1usize..48,
        n in 1usize..20,
        k in 0usize..24,
        seed in 0u64..500,
    ) {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut gen = |r: usize, c: usize| {
            let data: Vec<f32> = (0..r * c).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
            Matrix::from_vec(r, c, data)
        };
        let a = gen(m, k);
        let b = gen(n, k);
        let fast = a.matmul_t(&b);
        let oracle = a.matmul_t_naive(&b);
        for (x, y) in fast.as_slice().iter().zip(oracle.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_bit_identical_across_kernel_paths(
        m in 1usize..48,
        n in 1usize..20,
        k in 1usize..24,
        seed in 0u64..500,
    ) {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut gen = |r: usize, c: usize| {
            // Exact zeros mixed in: the old kernel skipped them, the tiled
            // one must not change results because of that.
            let data: Vec<f32> = (0..r * c)
                .map(|_| if rng.gen_bool(0.25) { 0.0 } else { rng.gen_range(-4.0f32..4.0) })
                .collect();
            Matrix::from_vec(r, c, data)
        };
        let a = gen(m, k);
        let b = gen(k, n);
        let fast = a.matmul(&b);
        let oracle = a.matmul_naive(&b);
        for (x, y) in fast.as_slice().iter().zip(oracle.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn l2_normalize_unit_columns(
        rows in 1usize..20,
        cols in 1usize..8,
        seed in 0u64..500,
    ) {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let orig = data.clone();
        ops::l2_normalize_columns(&mut data, cols);
        for c in 0..cols {
            let pre: f32 = (0..rows).map(|r| orig[r * cols + c].powi(2)).sum::<f32>().sqrt();
            let post: f32 = (0..rows).map(|r| data[r * cols + c].powi(2)).sum::<f32>().sqrt();
            if pre > 1e-3 {
                prop_assert!((post - 1.0).abs() < 1e-3);
            }
        }
    }
}
