#!/usr/bin/env bash
# Performance-inversion guard over BENCH_legalize.json: the parallel
# per-Gcell runner must be faster than the flat baseline, and batched value
# inference must be faster than per-state forwards. Guards the two
# regressions this bench file exists to catch; run it against a freshly
# regenerated snapshot (`cargo bench -p rlleg-bench`), not a stale one.
#
# Usage: scripts/bench_guard.sh [path/to/BENCH_legalize.json]
# Opt-in from scripts/ci.sh via RLLEG_BENCH_GUARD=1.
set -euo pipefail
cd "$(dirname "$0")/.."

json="${1:-BENCH_legalize.json}"
if [[ ! -f "$json" ]]; then
  echo "bench_guard: $json not found (run 'cargo bench -p rlleg-bench' first)" >&2
  exit 2
fi

# mean <group> <id>: extract mean_ns for one case from the one-line-per-case
# JSON the bench harness writes. No jq dependency.
mean() {
  awk -v g="$1" -v i="$2" '
    index($0, "\"group\": \"" g "\"") && index($0, "\"id\": \"" i "\"") {
      if (match($0, /"mean_ns": [0-9.]+/)) {
        print substr($0, RSTART + 11, RLENGTH - 11)
        found = 1
        exit
      }
    }
    END { if (!found) exit 1 }
  ' "$json" || {
    echo "bench_guard: case $1/$2 missing from $json" >&2
    exit 2
  }
}

flat=$(mean legalize_full flat)
par=$(mean legalize_full gcell_parallel2)
batched=$(mean network values_batched)
per_state=$(mean network values_per_state)

fail=0
if ! awk -v a="$par" -v b="$flat" 'BEGIN { exit !(a < b) }'; then
  echo "bench_guard: FAIL legalize_full/gcell_parallel2 (${par} ns) not faster than legalize_full/flat (${flat} ns)" >&2
  fail=1
fi
if ! awk -v a="$batched" -v b="$per_state" 'BEGIN { exit !(a < b) }'; then
  echo "bench_guard: FAIL network/values_batched (${batched} ns) not faster than network/values_per_state (${per_state} ns)" >&2
  fail=1
fi
if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "bench_guard: OK (gcell_parallel2 ${par} ns < flat ${flat} ns; values_batched ${batched} ns < values_per_state ${per_state} ns)"
