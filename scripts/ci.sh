#!/usr/bin/env bash
# CI gate for the workspace: formatting, lints, and the tier-1 verify
# (release build + full test suite) from ROADMAP.md. Run from anywhere;
# fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 verify: cargo build --release"
cargo build --release

echo "==> tier-1 verify: cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo bench --no-run (benches must keep building)"
cargo bench --no-run --workspace

# Opt-in performance gate: regenerate the bench snapshot and fail on the
# two inversions the parallel runner and batched inference must never
# reintroduce. Off by default — bench runs are too noisy for shared CI
# machines unless explicitly requested.
if [[ "${RLLEG_BENCH_GUARD:-0}" == "1" ]]; then
  echo "==> bench guard: cargo bench -p rlleg-bench && scripts/bench_guard.sh"
  cargo bench -p rlleg-bench
  scripts/bench_guard.sh
fi

echo "==> ci: all stages passed"
