#!/usr/bin/env bash
# CI gate for the workspace: formatting, lints, and the tier-1 verify
# (release build + full test suite) from ROADMAP.md. Run from anywhere;
# fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 verify: cargo build --release"
cargo build --release

echo "==> tier-1 verify: cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo bench --no-run (benches must keep building)"
cargo bench --no-run --workspace

echo "==> ci: all stages passed"
