#!/usr/bin/env bash
# CI gate for the workspace: formatting, lints, and the tier-1 verify
# (release build + full test suite) from ROADMAP.md. Run from anywhere;
# fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 verify: cargo build --release"
cargo build --release

echo "==> tier-1 verify: cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo bench --no-run (benches must keep building)"
cargo bench --no-run --workspace

# Small scale points of the legalize_scale curve, run unconditionally:
# every iteration asserts zero failed cells, so this is a correctness
# smoke at 1k/10k cells, not a timing gate (the snapshot goes to target/
# to keep the tracked BENCH_legalize.json a full-suite artifact).
echo "==> legalize scale smoke: cargo bench -p rlleg-bench -- --only-scale --cells 10k"
cargo bench -p rlleg-bench --bench legalize -- --only-scale --cells 10k \
  --out "$PWD/target/BENCH_scale_smoke.json"

# Global-placement smoke at 1k cells, run unconditionally: wall time plus
# QoR scalars for the gplace -> legalize pipeline vs the synthetic
# baseline. The bench asserts zero failed cells on both paths, so this is
# a correctness gate, not a timing one (snapshot goes to target/ like the
# scale smoke). GpConfig's default seed makes the run fixed-seed.
echo "==> gplace smoke: cargo bench -p rlleg-bench -- --only-gplace --cells 1k"
cargo bench -p rlleg-bench --bench legalize -- --only-gplace --cells 1k \
  --out "$PWD/target/BENCH_gplace_smoke.json"

# Fixed-seed fuzz smoke: 50 iterations of the differential oracles
# (legalize configurations, DEF/LEF round-trip + mutation, grid ops,
# trainer invariants). Deterministic, budgeted well under 30 s in
# release. RLLEG_FUZZ_LONG=1 runs the deeper sweep.
echo "==> fuzz smoke: rlleg-fuzz --iters 50 --seed 1"
cargo run -q --release -p rlleg-fuzz -- --iters 50 --seed 1

# Loopback serving smoke: start an in-process server, run one job over
# the binary protocol end to end, verify the result DEF is legal, and
# drain gracefully. Catches wire-format or event-loop regressions that
# unit tests on the codec alone would miss.
echo "==> serve smoke: rlleg-serve --smoke"
cargo run -q --release -p rlleg-serve -- --smoke

# Fixed-seed protocol fuzz smoke: 100 iterations of the proto oracle
# alone (frame round-trips, adversarial reassembly, truncation, CRC
# flips, splices, garbage, cap enforcement). Deterministic and fast.
echo "==> protocol fuzz smoke: rlleg-fuzz --iters 100 --seed 1 --only proto"
cargo run -q --release -p rlleg-fuzz -- --iters 100 --seed 1 --only proto

# Fixed-seed fault-injection smoke: 200 iterations of the fault oracle
# alone (solver panics, corrupted checkpoints, NaN weights, inference
# stalls). Every injected fault must end in a completed run — a process
# abort fails this stage by construction.
echo "==> fault-injection smoke: rlleg-fuzz --iters 200 --seed 7 --only fault"
cargo run -q --release -p rlleg-fuzz -- --iters 200 --seed 7 --only fault

# Fixed-seed parameter-store smoke: 200 iterations of the params oracle
# alone (ParamStore seqlock under writer/reader contention: torn
# snapshots, epoch/stamp coherence, monotone epochs). The store carries
# the asynchronous trainer, so this runs unconditionally.
echo "==> param-store fuzz smoke: rlleg-fuzz --iters 200 --seed 3 --only params"
cargo run -q --release -p rlleg-fuzz -- --iters 200 --seed 3 --only params

# Fixed-seed WAL fuzz smoke: 100 iterations of the wal oracle alone
# (crash-point differential replay of the write-ahead job journal: torn
# tails, garbage tails, mid-rotation kills), plus the sampled real-SIGKILL
# child-process check every 16th iteration. Deterministic in the seed.
echo "==> wal fuzz smoke: rlleg-fuzz --iters 100 --seed 1 --only wal"
cargo run -q --release -p rlleg-fuzz -- --iters 100 --seed 1 --only wal

# Kill/restart/recover smoke: submit a batch against a real server child,
# SIGKILL it mid-flight, restart on the same data directory, and audit
# every acknowledged job over HTTP — zero lost, zero divergent.
echo "==> recover smoke: rlleg-serve --recover-smoke"
cargo run -q --release -p rlleg-serve -- --recover-smoke

# Fixed-seed global-placer fuzz smoke: 100 iterations of the gplace
# oracle alone (finite on-die output, fixed cells pinned, non-increasing
# overflow, bit-determinism, and zero-failed legalization on spec
# scenarios). Runs unconditionally like the proto/fault/params smokes.
echo "==> gplace fuzz smoke: rlleg-fuzz --iters 100 --seed 1 --only gplace"
cargo run -q --release -p rlleg-fuzz -- --iters 100 --seed 1 --only gplace

if [[ "${RLLEG_FUZZ_LONG:-0}" == "1" ]]; then
  echo "==> fuzz long: rlleg-fuzz --iters 1000, seeds 1-4"
  for s in 1 2 3 4; do
    cargo run -q --release -p rlleg-fuzz -- --iters 1000 --seed "$s"
  done
  echo "==> fault-injection long: rlleg-fuzz --iters 1000 --only fault, seeds 5-8"
  for s in 5 6 7 8; do
    cargo run -q --release -p rlleg-fuzz -- --iters 1000 --seed "$s" --only fault
  done
  echo "==> param-store long: rlleg-fuzz --iters 2000 --only params, seeds 9-10"
  for s in 9 10; do
    cargo run -q --release -p rlleg-fuzz -- --iters 2000 --seed "$s" --only params
  done
  echo "==> distributional sweep: async vs round-robin cost bands (wide)"
  cargo test -q --release -p rl-legalizer --test distributional -- --ignored
fi

# Opt-in performance gate: regenerate the bench snapshot and fail on the
# two inversions the parallel runner and batched inference must never
# reintroduce. Off by default — bench runs are too noisy for shared CI
# machines unless explicitly requested.
if [[ "${RLLEG_BENCH_GUARD:-0}" == "1" ]]; then
  echo "==> bench guard: cargo bench -p rlleg-bench && scripts/bench_guard.sh"
  cargo bench -p rlleg-bench
  echo "==> serve load snapshot: rlleg-serve --loadgen"
  cargo run -q --release -p rlleg-serve -- --loadgen --sessions 64 --jobs 4 \
    --out BENCH_serve.json
  scripts/bench_guard.sh
fi

echo "==> ci: all stages passed"
