//! Umbrella crate for the RL-Legalizer reproduction workspace.
//!
//! Re-exports every member crate under one roof so downstream users (and
//! the repository's own `/examples` and `/tests`) can depend on a single
//! crate:
//!
//! - [`geom`] — geometry primitives and the R-tree,
//! - [`design`] — the mixed-height design model, DEF I/O, metrics, DRC,
//! - [`benchgen`] — synthetic ICCAD-2017/OpenCores-style benchmarks,
//! - [`gplace`] — the analytical global placer (quadratic + diffusion),
//! - [`legalize`] — the pixel-wise search legalizer, Gcells, features,
//! - [`nn`] — the neural-network stack,
//! - [`bayesopt`] — GP Bayesian optimization,
//! - [`rl`] — the RL-Legalizer itself (environment, A3C, inference),
//! - [`serve`] — legalization as a service: the async job server,
//! - [`telemetry`] — zero-dependency metrics, spans, and event journal.
//!
//! # Example
//!
//! ```
//! use rlleg_suite::prelude::*;
//!
//! let design = generate(&find_spec("usb_phy").expect("table row").scaled(0.2));
//! let mut d = design.clone();
//! let mut lg = Legalizer::new(&d);
//! let stats = lg.run(&mut d, &Ordering::SizeDescending);
//! assert!(stats.is_complete());
//! ```

#![warn(missing_docs)]

pub use rlleg_bayesopt as bayesopt;
pub use rlleg_benchgen as benchgen;
pub use rlleg_design as design;
pub use rlleg_geom as geom;
pub use rlleg_gplace as gplace;
pub use rlleg_legalize as legalize;
pub use rlleg_nn as nn;
pub use rlleg_serve as serve;
pub use telemetry;

/// The core RL framework (crate `rl-legalizer`).
pub use rl_legalizer as rl;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use crate::benchgen::{find_spec, generate, test_suite, training_suite};
    pub use crate::design::{legality, metrics::Qor, Design, DesignBuilder, Technology};
    pub use crate::geom::{Point, Rect};
    pub use crate::gplace::{place, GpConfig};
    pub use crate::legalize::{GcellGrid, Legalizer, Ordering};
    pub use crate::rl::{train, RlConfig, RlLegalizer};
}
