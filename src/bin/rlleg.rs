//! `rlleg` — command-line front end for the RL-Legalizer reproduction.
//!
//! ```text
//! rlleg generate --design des_perf_b_md1 --scale 0.01 --out gp.def [--svg gp.svg]
//! rlleg gplace   --def gp.def [--seed S] [--legalize] [--out placed.def]
//! rlleg legalize --def gp.def [--lef lib.lef] [--order size|x|random:SEED]
//!                [--heuristics] [--out legal.def] [--svg legal.svg]
//! rlleg check    --def legal.def [--lef lib.lef]
//! rlleg train    --designs mc_top,spi_top --scale 0.3 --episodes 40 --out model.json
//! rlleg apply    --model model.json --def gp.def [--out legal.def]
//! rlleg bench-list
//! ```
//!
//! Exit code is nonzero on I/O errors, parse errors, or (for `legalize`/
//! `apply`/`check`) when the result is not fully legal.

use std::process::ExitCode;

use rlleg_bench::Args;
use rlleg_suite::design::{def, lef::Library, viz};
use rlleg_suite::prelude::*;
use rlleg_suite::rl::{CellWiseNet, RlLegalizer as Rl};

fn load_design(args: &Args) -> Result<Design, String> {
    let path: String = args.get("def", String::new());
    if path.is_empty() {
        return Err("missing --def <path>".into());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    let tech_name: String = args.get("tech", "iccad2017".to_owned());
    let base = match tech_name.as_str() {
        "iccad2017" | "contest" => Technology::contest(),
        "nangate45" => Technology::nangate45(),
        other => return Err(format!("unknown --tech `{other}` (iccad2017|nangate45)")),
    };
    let lef_path: String = args.get("lef", String::new());
    if lef_path.is_empty() {
        def::parse_def(&text, base).map_err(|e| e.to_string())
    } else {
        let lef_text =
            std::fs::read_to_string(&lef_path).map_err(|e| format!("read {lef_path}: {e}"))?;
        let lib = Library::parse(&lef_text).map_err(|e| e.to_string())?;
        def::parse_def_with_library(&text, &lib, &base).map_err(|e| e.to_string())
    }
}

fn save_outputs(design: &Design, args: &Args) -> Result<(), String> {
    let out: String = args.get("out", String::new());
    if !out.is_empty() {
        def::write_def_file(design, std::path::Path::new(&out))
            .map_err(|e| format!("write {out}: {e}"))?;
        println!("wrote {out}");
    }
    let svg: String = args.get("svg", String::new());
    if !svg.is_empty() {
        let opts = viz::SvgOptions {
            displacement_vectors: args.flag("vectors"),
            ..viz::SvgOptions::default()
        };
        std::fs::write(&svg, viz::render_svg(design, &opts))
            .map_err(|e| format!("write {svg}: {e}"))?;
        println!("wrote {svg}");
    }
    Ok(())
}

fn report_legality(design: &Design) -> bool {
    let violations = legality::check(design, true);
    if violations.is_empty() {
        println!("legality: clean ({} cells)", design.num_movable());
        true
    } else {
        println!("legality: {} violations", violations.len());
        for v in violations.iter().take(10) {
            println!("  {v}");
        }
        if violations.len() > 10 {
            println!("  ... and {} more", violations.len() - 10);
        }
        false
    }
}

fn cmd_generate(args: &Args) -> Result<bool, String> {
    let name: String = args.get("design", String::new());
    let spec = find_spec(&name)
        .ok_or_else(|| format!("unknown design `{name}` — try `rlleg bench-list`"))?;
    let scale: f64 = args.get("scale", 0.01);
    let design = generate(&spec.scaled(scale));
    println!(
        "{}: {} cells, {} nets, density {:.2}, core {}x{} dbu",
        design.name,
        design.num_movable(),
        design.num_nets(),
        design.density(),
        design.core.width(),
        design.core.height()
    );
    save_outputs(&design, args)?;
    Ok(true)
}

fn cmd_legalize(args: &Args) -> Result<bool, String> {
    let mut design = load_design(args)?;
    let order_spec: String = args.get("order", "size".to_owned());
    let ordering = match order_spec.as_str() {
        "size" => Ordering::SizeDescending,
        "x" => Ordering::XAscending,
        other => match other.strip_prefix("random:") {
            Some(seed) => Ordering::Random(
                seed.parse()
                    .map_err(|_| format!("bad seed in --order `{other}`"))?,
            ),
            None => return Err(format!("unknown --order `{other}` (size|x|random:SEED)")),
        },
    };
    let before = Qor::measure(&design);
    let t = std::time::Instant::now();
    let mut lg = Legalizer::new(&design);
    let stats = lg.run(&mut design, &ordering);
    if args.flag("heuristics") {
        lg.swap_pass(&mut design);
        lg.rearrange_pass(&mut design);
    }
    println!(
        "legalized {}/{} cells in {:.2}s (order: {order_spec})",
        stats.legalized,
        stats.legalized + stats.failed.len(),
        t.elapsed().as_secs_f64()
    );
    println!("before: {before}");
    println!("after:  {}", Qor::measure(&design));
    let ok = report_legality(&design);
    save_outputs(&design, args)?;
    Ok(ok && stats.is_complete())
}

fn cmd_gplace(args: &Args) -> Result<bool, String> {
    let mut design = load_design(args)?;
    let cfg = GpConfig {
        seed: args.get("seed", 1),
        ..GpConfig::default()
    };
    let before = Qor::measure(&design);
    let t = std::time::Instant::now();
    let stats = place(&mut design, &cfg);
    println!(
        "global-placed {} cells in {:.2}s: hpwl {}, overflow {:.3} -> {:.3} \
         ({} iterations, {} cg steps, target density {:.2})",
        design.num_movable(),
        t.elapsed().as_secs_f64(),
        stats.hpwl,
        stats.overflow.first().copied().unwrap_or(0.0),
        stats.overflow.last().copied().unwrap_or(0.0),
        stats.iterations,
        stats.cg_iterations,
        stats.target_density,
    );
    println!("before: {before}");
    println!("after:  {}", Qor::measure(&design));
    let mut ok = true;
    if args.flag("legalize") {
        let mut lg = Legalizer::new(&design);
        let run_stats = lg.run(&mut design, &Ordering::SizeDescending);
        println!(
            "legalized {}/{} cells",
            run_stats.legalized,
            run_stats.legalized + run_stats.failed.len()
        );
        println!("legal:  {}", Qor::measure(&design));
        ok = report_legality(&design) && run_stats.is_complete();
    }
    save_outputs(&design, args)?;
    Ok(ok)
}

fn cmd_check(args: &Args) -> Result<bool, String> {
    let design = load_design(args)?;
    println!("{}", Qor::measure(&design));
    Ok(report_legality(&design))
}

fn cmd_train(args: &Args) -> Result<bool, String> {
    let names: String = args.get("designs", String::new());
    if names.is_empty() {
        return Err("missing --designs a,b,c".into());
    }
    let scale: f64 = args.get("scale", 0.01);
    let mut designs = Vec::new();
    for name in names.split(',') {
        let spec = find_spec(name.trim())
            .ok_or_else(|| format!("unknown design `{name}` — try `rlleg bench-list`"))?;
        designs.push(generate(&spec.scaled(scale)));
    }
    let cfg = RlConfig {
        episodes: args.get("episodes", 40),
        agents: args.get("agents", 4),
        hidden_dim: args.get("hidden", 64),
        seed: args.get("seed", 0),
        ..RlConfig::tuned()
    };
    println!(
        "training on {} designs ({} total cells), {} agents x {} episodes",
        designs.len(),
        designs.iter().map(Design::num_movable).sum::<usize>(),
        cfg.agents,
        cfg.episodes
    );
    let t = std::time::Instant::now();
    let result = train(&designs, &cfg);
    println!(
        "trained in {:.0}s; tail cost {:.2}",
        t.elapsed().as_secs_f64(),
        result.tail_cost(20)
    );
    for d in &designs {
        if let Some(best) = result.best_for_design(&d.name) {
            println!(
                "  {}: best episode cost {:.2} ({})",
                d.name, best.cost, best.qor
            );
        }
    }
    let out: String = args.get("out", "model.json".to_owned());
    std::fs::write(
        &out,
        result.best_model.to_json().map_err(|e| e.to_string())?,
    )
    .map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(true)
}

fn cmd_apply(args: &Args) -> Result<bool, String> {
    let model_path: String = args.get("model", String::new());
    if model_path.is_empty() {
        return Err("missing --model model.json".into());
    }
    let json =
        std::fs::read_to_string(&model_path).map_err(|e| format!("read {model_path}: {e}"))?;
    let model = CellWiseNet::from_json(&json).map_err(|e| e.to_string())?;
    let mut design = load_design(args)?;
    let report = Rl::new(model).legalize(&mut design);
    println!(
        "RL-ordered legalization: {} placed, {} failed, {:.2}s ({:.0}% features, {:.0}% network)",
        report.legalized,
        report.failed.len(),
        report.total_time.as_secs_f64(),
        100.0 * report.feature_time.as_secs_f64() / report.total_time.as_secs_f64().max(1e-12),
        100.0 * report.network_time.as_secs_f64() / report.total_time.as_secs_f64().max(1e-12),
    );
    println!("after: {}", Qor::measure(&design));
    let ok = report_legality(&design);
    save_outputs(&design, args)?;
    Ok(ok && report.is_complete())
}

fn cmd_bench_list() -> Result<bool, String> {
    println!("training benchmarks (Table II):");
    for s in training_suite() {
        println!(
            "  {:<20} {:>8} cells  density {:.2}",
            s.name, s.num_cells, s.density
        );
    }
    println!("test benchmarks (Table III):");
    for s in test_suite() {
        println!(
            "  {:<20} {:>8} cells  density {:.2}",
            s.name, s.num_cells, s.density
        );
    }
    Ok(true)
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        eprintln!("usage: rlleg <generate|gplace|legalize|check|train|apply|bench-list> [flags]");
        eprintln!("see the module docs (`cargo doc`) or README.md for flag details");
        return ExitCode::FAILURE;
    };
    let args = Args::from_env();
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "gplace" => cmd_gplace(&args),
        "legalize" => cmd_legalize(&args),
        "check" => cmd_check(&args),
        "train" => cmd_train(&args),
        "apply" => cmd_apply(&args),
        "bench-list" => cmd_bench_list(),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
