//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion`/`BenchmarkGroup`/`Bencher`/`BenchmarkId` API
//! plus the `criterion_group!`/`criterion_main!` macros. Instead of
//! criterion's statistical machinery it runs each benchmark for a bounded
//! number of timed iterations (with a wall-clock cap) and prints the mean
//! iteration time — enough to compare runs by eye and to keep
//! `harness = false` bench targets building and runnable offline.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark case, kept in a process-global registry so
/// `harness = false` runners can export machine-readable results (the
/// `BENCH_*.json` files tracked at the repo root).
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark group name.
    pub group: String,
    /// Case id within the group.
    pub id: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
}

impl Record {
    /// Iterations per second implied by the mean.
    pub fn iters_per_sec(&self) -> f64 {
        if self.mean_ns > 0.0 {
            1.0e9 / self.mean_ns
        } else {
            f64::INFINITY
        }
    }
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// All benchmark measurements recorded so far in this process.
pub fn records() -> Vec<Record> {
    RECORDS.lock().expect("records lock").clone()
}

/// Records a raw scalar measurement (a QoR value such as a wirelength or
/// an overflow ratio, rather than a timing) under `group/id`. The value is
/// carried in the `mean_ns` field so exported snapshots keep the single
/// `{"group", "id", "mean_ns"}` schema; consumers read such groups' values
/// directly rather than as nanoseconds.
pub fn record_value(group: impl Into<String>, id: impl Into<String>, value: f64) {
    let group = group.into();
    let id = id.into();
    println!("{group}/{id:<40} {value:>16.4}");
    RECORDS.lock().expect("records lock").push(Record {
        group,
        id,
        mean_ns: value,
    });
}

/// Writes every recorded measurement as a JSON document:
/// `{"cases": [{"group", "id", "mean_ns", "iters_per_sec"}, ...]}`.
///
/// # Errors
///
/// Returns any I/O error from writing `path`.
pub fn export_json(path: &str) -> std::io::Result<()> {
    let recs = records();
    let mut out = String::from("{\n  \"cases\": [\n");
    for (i, r) in recs.iter().enumerate() {
        let sep = if i + 1 == recs.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"group\": {:?}, \"id\": {:?}, \"mean_ns\": {:.4}, \"iters_per_sec\": {:.1}}}{sep}\n",
            r.group,
            r.id,
            r.mean_ns,
            r.iters_per_sec(),
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Upper bound on wall-clock time spent measuring a single benchmark.
const TIME_CAP: Duration = Duration::from_secs(1);

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendered via `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything `bench_function` accepts as an identifier.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: u64,
    /// Mean time per iteration from the most recent `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine` over up to `samples` iterations (stopping early at
    /// the wall-clock cap) after one untimed warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut spent = Duration::ZERO;
        let mut iters: u64 = 0;
        while iters < self.samples && spent < TIME_CAP {
            let start = Instant::now();
            black_box(routine());
            spent += start.elapsed();
            iters += 1;
        }
        self.last_mean = Some(spent / iters.max(1) as u32);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: None,
        };
        f(&mut b);
        self.report(&id, b.last_mean);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: None,
        };
        f(&mut b, input);
        self.report(&id, b.last_mean);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, mean: Option<Duration>) {
        match mean {
            Some(m) => {
                println!("{}/{:<40} {:>12.3?}/iter", self.name, id.id, m);
                RECORDS.lock().expect("records lock").push(Record {
                    group: self.name.clone(),
                    id: id.id.clone(),
                    mean_ns: m.as_secs_f64() * 1.0e9,
                });
            }
            None => println!("{}/{:<40} (no measurement)", self.name, id.id),
        }
    }
}

/// Entry point handed to benchmark functions by `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group {name}");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(runs >= 4, "warm-up plus three samples, got {runs}");
        let recs = records();
        assert!(recs.iter().any(|r| r.group == "smoke" && r.id == "count"));
        assert!(recs.iter().any(|r| r.id == "sum/8"));
        let r = recs.iter().find(|r| r.id == "count").unwrap();
        assert!(r.mean_ns >= 0.0 && r.iters_per_sec() > 0.0);
    }

    #[test]
    fn record_value_round_trips_raw_scalars() {
        record_value("qor", "hpwl/1k", 12345.0);
        let recs = records();
        let r = recs
            .iter()
            .find(|r| r.group == "qor" && r.id == "hpwl/1k")
            .unwrap();
        assert_eq!(r.mean_ns, 12345.0);
    }
}
