//! Offline stand-in for `serde_json`: renders and parses the vendored
//! serde shim's [`Value`] tree as JSON text.
//!
//! Supports the workspace's whole usage surface: `to_string`,
//! `to_string_pretty`, `from_str`, `to_value`/`from_value`, and the shared
//! [`Error`] type. Non-finite floats serialize as `null` (as real
//! serde_json's `Value` rendering does).

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Converts a value into the serde data model.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Rebuilds a typed value from the serde data model.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

/// Parses a JSON string into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    T::deserialize(&value)
}

/// Parses a JSON string into a [`Value`] tree.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 prints shortest round-trip form; bare
                // integers (e.g. "1") are still valid JSON numbers.
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while let Some(&c) = b.get(*pos) {
        if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut m = serde::Map::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(m));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error::custom(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                m.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(m));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, kw: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(v)
    } else {
        Err(Error::custom(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::custom("bad \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::custom("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar.
                let start = *pos;
                let len = utf8_len(b[start]);
                let chunk = b
                    .get(start..start + len)
                    .ok_or_else(|| Error::custom("invalid UTF-8"))?;
                out.push_str(
                    std::str::from_utf8(chunk).map_err(|_| Error::custom("invalid UTF-8"))?,
                );
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| Error::custom("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::custom(format!("expected value at byte {start}")));
    }
    if !is_float {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Int(n));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::UInt(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::custom(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        for text in [
            "null",
            "true",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null],\"c\":\"x\\\"y\"}",
            "-12.5",
        ] {
            let v = parse_value_str(text).unwrap();
            let back = to_string(&v).unwrap();
            let v2 = parse_value_str(&back).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse_value_str("{\"k\":[1,{\"n\":2.5}],\"s\":\"line\\n2\"}").unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1u64, 2, u64::MAX];
        let s = to_string(&xs).unwrap();
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
    }
}
