//! Offline stand-in for `crossbeam`.
//!
//! Provides the [`channel`] module surface the workspace uses —
//! `bounded`/`unbounded` channels with cloneable senders, `try_send`,
//! `recv_timeout`, and iteration — implemented over `std::sync::mpsc`.
//! Receivers are single-consumer (as this workspace uses them).

/// Multi-producer single-consumer channels.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// The receiver was dropped.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Sender::send`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders were dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders were dropped.
        Disconnected,
    }

    enum SenderKind<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for SenderKind<T> {
        fn clone(&self) -> Self {
            match self {
                SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
                SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        kind: SenderKind<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                kind: self.kind.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.kind {
                SenderKind::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Sends without blocking; fails when full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.kind {
                SenderKind::Bounded(s) => s.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
                SenderKind::Unbounded(s) => {
                    s.send(value).map_err(|e| TrySendError::Disconnected(e.0))
                }
            }
        }
    }

    /// The receiving half of a channel (single consumer).
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Iterates until every sender is dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.try_iter()
        }
    }

    /// Creates a channel with a fixed capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                kind: SenderKind::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                kind: SenderKind::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_backpressure() {
            let (tx, rx) = bounded::<u32>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
            drop(tx);
            let rest: Vec<u32> = rx.iter().collect();
            assert_eq!(rest, vec![2, 3]);
        }

        #[test]
        fn senders_clone() {
            let (tx, rx) = bounded::<u32>(8);
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
        }
    }
}
