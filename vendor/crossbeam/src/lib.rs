//! Offline stand-in for `crossbeam`.
//!
//! Provides the [`channel`] module surface the workspace uses —
//! `bounded`/`unbounded` channels with cloneable senders, `try_send`,
//! `recv_timeout`, and iteration — implemented over `std::sync::mpsc` —
//! plus the [`thread`] scoped-spawn API over `std::thread::scope`.

/// Scoped threads (the `crossbeam::thread::scope` surface) over
/// `std::thread::scope`.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as std_thread;

    /// Result of [`scope`] or [`ScopedJoinHandle::join`]; `Err` carries a
    /// panic payload.
    pub type Result<T> = std_thread::Result<T>;

    /// A scope for spawning borrowing threads; all spawned threads are
    /// joined before [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish; `Err` when it panicked.
        ///
        /// # Errors
        ///
        /// Returns the panic payload when the thread panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in real crossbeam, the
        /// closure receives the scope again so workers can spawn more
        /// workers.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a [`Scope`]; every spawned thread is joined before
    /// returning. Unlike `std::thread::scope`, a panicking child turns
    /// into an `Err` instead of propagating.
    ///
    /// # Errors
    ///
    /// Returns the panic payload when `f` or an unjoined child panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std_thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let counter = AtomicUsize::new(0);
            let counter = &counter;
            let total = super::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|i| {
                        s.spawn(move |_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                            i
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
            })
            .unwrap();
            assert_eq!(total, 6);
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        }

        #[test]
        fn child_panic_becomes_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}

/// Multi-producer single-consumer channels.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// The receiver was dropped.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Sender::send`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders were dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders were dropped.
        Disconnected,
    }

    enum SenderKind<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for SenderKind<T> {
        fn clone(&self) -> Self {
            match self {
                SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
                SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        kind: SenderKind<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                kind: self.kind.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.kind {
                SenderKind::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Sends without blocking; fails when full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.kind {
                SenderKind::Bounded(s) => s.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
                SenderKind::Unbounded(s) => {
                    s.send(value).map_err(|e| TrySendError::Disconnected(e.0))
                }
            }
        }
    }

    /// The receiving half of a channel (single consumer).
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Iterates until every sender is dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.try_iter()
        }
    }

    /// Creates a channel with a fixed capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                kind: SenderKind::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                kind: SenderKind::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_backpressure() {
            let (tx, rx) = bounded::<u32>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
            drop(tx);
            let rest: Vec<u32> = rx.iter().collect();
            assert_eq!(rest, vec![2, 3]);
        }

        #[test]
        fn senders_clone() {
            let (tx, rx) = bounded::<u32>(8);
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
        }
    }
}
