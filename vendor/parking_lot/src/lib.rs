//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! surface (`lock()` returning a guard directly, `into_inner()` without a
//! `Result`). Performance characteristics are std's, which is fine for this
//! workspace's coarse-grained uses.

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock (poisoning is ignored, as parking_lot does).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
