//! Offline stand-in for `proptest`.
//!
//! Implements the sampling side of the proptest surface this workspace
//! uses: the `proptest!` macro, range/tuple/`any`/`Just`/`prop_map`/
//! `collection::vec` strategies, `ProptestConfig::with_cases`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros. Failing inputs
//! are reported with their deterministic case seed but are **not shrunk**
//! and no regression file is persisted.

pub mod test_runner {
    /// Deterministic 64-bit generator (splitmix64) used to drive sampling.
    #[derive(Debug, Clone)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)` with 53 random bits.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// `prop_assume!` filtered the input; the case is re-drawn.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Drives one property over `config.cases` sampled inputs.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            Self { config }
        }

        pub fn run(&mut self, test: impl Fn(&mut Rng) -> Result<(), TestCaseError>) {
            let mut passed: u32 = 0;
            let mut rejected: u64 = 0;
            let mut draw: u64 = 0;
            while passed < self.config.cases {
                // Seeds are a pure function of the draw index, so a failure
                // message's seed reproduces the exact input.
                let seed = 0xC0FF_EE00_0000_0000u64 ^ draw;
                draw += 1;
                match test(&mut Rng::from_seed(seed)) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(what)) => {
                        rejected += 1;
                        if rejected > 64 * u64::from(self.config.cases) + 1024 {
                            panic!(
                                "proptest: too many inputs rejected by prop_assume! ({rejected} rejects, last: {what})"
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest: case failed (seed {seed:#x}, after {passed} passing cases): {msg}");
                    }
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for sampling values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut Rng) -> Self::Value;

        /// Transforms every sampled value through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut Rng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut Rng) -> T {
            (self.f)(self.source.sample(rng))
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let hi = (rng.next_u64() as u128) << 64;
                    let off = ((hi | rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut Rng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let hi = (rng.next_u64() as u128) << 64;
                    let off = ((hi | rng.next_u64() as u128) % span) as i128;
                    (*self.start() as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + rng.next_f64() as $t * (self.end - self.start);
                    if v < self.end { v } else { self.start }
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.next_f64() as $t * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// Strategy over the full domain of `T`; returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    // Mirrors real proptest's prelude, where `prop` aliases the crate root
    // so `prop::collection::vec(..)` resolves.
    pub use crate as prop;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::test_runner::Config as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($config);
                runner.run(|__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    let __proptest_outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __proptest_outcome
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::Rng::from_seed(7);
        for _ in 0..2_000 {
            let v = (3i64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (1u8..=4).sample(&mut rng);
            assert!((1..=4).contains(&w));
            let f = (-2.0f32..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn tuples_and_map_compose(
            (a, b) in (0i32..10, 10i32..20).prop_map(|(x, y)| (x, y)),
            mut v in prop::collection::vec(0i64..5, 1..4),
        ) {
            v.push(a as i64);
            prop_assume!(b != 19);
            prop_assert!(a < b);
            prop_assert_eq!(v.last().copied(), Some(a as i64));
        }
    }
}
