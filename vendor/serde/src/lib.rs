//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no network access and no
//! crates-io mirror, so the real `serde` cannot resolve. This crate keeps
//! the *surface* the workspace uses — `Serialize`/`Deserialize` traits, the
//! `#[derive(Serialize, Deserialize)]` macros (via the sibling
//! `serde_derive` shim), and `#[serde(skip)]`/`#[serde(default)]` — but
//! simplifies the data model: serialization goes through a single JSON-like
//! [`Value`] tree instead of serde's visitor architecture. `serde_json`
//! (also vendored) renders/parses that tree.
//!
//! The simplification is deliberate: the workspace only ever serializes to
//! and from JSON, and a value tree keeps the hand-written derive macro
//! (no `syn`/`quote` available either) small and auditable.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Map),
}

impl Value {
    /// The object map, if this value is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string slice, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array, if this value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `true` when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// An insertion-ordered string→value map (object representation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key (appending; duplicate keys keep the first match on
    /// lookup, mirroring typical JSON object semantics closely enough).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        self.entries.push((key.into(), value));
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the serialization data model.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Derive-macro support helpers (referenced by generated code; public but
// hidden from docs).
// ---------------------------------------------------------------------------

/// Looks up a required field (missing fields read as `null`, which lets
/// `Option` fields default to `None` without an attribute).
#[doc(hidden)]
pub fn __field<T: Deserialize>(m: &Map, key: &str) -> Result<T, Error> {
    let v = m.get(key).unwrap_or(&Value::Null);
    T::deserialize(v).map_err(|e| Error::custom(format!("field `{key}`: {e}")))
}

/// Looks up a field marked `#[serde(default)]` or `#[serde(skip)]`.
#[doc(hidden)]
pub fn __field_default<T: Deserialize + Default>(m: &Map, key: &str) -> Result<T, Error> {
    match m.get(key) {
        None => Ok(T::default()),
        Some(Value::Null) => Ok(T::default()),
        Some(v) => T::deserialize(v).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn serialize(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) => Value::Int(n),
            Err(_) => Value::UInt(*self),
        }
    }
}

impl Deserialize for u64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(n) => u64::try_from(*n).map_err(|_| Error::custom("negative integer")),
            Value::UInt(n) => Ok(*n),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as u64),
            other => Err(Error::custom(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for u128 {
    fn serialize(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => n.serialize(),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Deserialize for u128 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        u64::deserialize(v).map(u128::from)
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            Value::Float(f) => Ok(*f),
            Value::Null => Ok(f64::NAN), // non-finite floats serialize as null
            other => Err(Error::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = String::deserialize(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", v.kind())))?;
        let mut out = BTreeMap::new();
        for (k, val) in obj.iter() {
            out.insert(k.clone(), V::deserialize(val)?);
        }
        Ok(out)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys for deterministic output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].serialize());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", v.kind())))?;
        let mut out = HashMap::new();
        for (k, val) in obj.iter() {
            out.insert(k.clone(), V::deserialize(val)?);
        }
        Ok(out)
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| {
                    Error::custom(format!("expected array, found {}", v.kind()))
                })?;
                let expect = [$($n),+].len();
                if a.len() != expect {
                    return Err(Error::custom(format!(
                        "expected {expect}-tuple, found array of {}",
                        a.len()
                    )));
                }
                Ok(($($t::deserialize(&a[$n])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::deserialize(&42i64.serialize()).unwrap(), 42);
        assert_eq!(u8::deserialize(&7u8.serialize()).unwrap(), 7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_owned().serialize()).unwrap(),
            "hi"
        );
        assert!(u8::deserialize(&Value::Int(300)).is_err());
    }

    #[test]
    fn options_and_vecs() {
        let v: Option<i64> = None;
        assert!(v.serialize().is_null());
        assert_eq!(Option::<i64>::deserialize(&Value::Null).unwrap(), None);
        let xs = vec![1i64, 2, 3];
        assert_eq!(Vec::<i64>::deserialize(&xs.serialize()).unwrap(), xs);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let m = Map::new();
        let got: Option<String> = __field(&m, "absent").unwrap();
        assert_eq!(got, None);
        assert!(__field::<String>(&m, "absent").is_err());
    }
}
