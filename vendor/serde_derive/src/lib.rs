//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim.
//!
//! The offline build environment has neither `syn` nor `quote`, so this
//! macro parses the item's token stream directly. It supports exactly the
//! shapes this workspace uses:
//!
//! - structs with named fields (honouring `#[serde(skip)]` and
//!   `#[serde(default)]`),
//! - tuple structs (newtype and general),
//! - enums with unit, newtype/tuple, and struct variants (externally
//!   tagged, like real serde's default representation).
//!
//! Generics are not supported and produce a compile error naming the type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => gen_struct_serialize(name, shape),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => gen_struct_deserialize(name, shape),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    match kw.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Skips outer attributes (including doc comments) and a `pub` /
/// `pub(...)` visibility prefix, advancing `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Reads the attributes at position `i` (advancing past them) and reports
/// whether any is `#[serde(skip)]` / `#[serde(default)]`.
fn read_field_attrs(tokens: &[TokenTree], i: &mut usize) -> (bool, bool) {
    let (mut skip, mut default) = (false, false);
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let text = g.stream().to_string();
            if text.starts_with("serde") {
                if text.contains("skip") {
                    skip = true;
                }
                if text.contains("default") {
                    default = true;
                }
            }
        }
        *i += 2;
    }
    (skip, default)
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let (skip, default) = read_field_attrs(&tokens, &mut i);
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name,
            skip,
            default,
        });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances `i` past one type, stopping at a top-level `,` (angle-bracket
/// depth tracked; groups are atomic tokens).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0usize;
    let mut n = 0usize;
    while i < tokens.len() {
        let _ = read_field_attrs(&tokens, &mut i);
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        n += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let _ = read_field_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_struct_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "m.insert(\"{0}\", ::serde::Serialize::serialize(&self.{0}));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_owned(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_owned(),
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_struct_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let mut s = format!(
                "let m = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 \"expected object for {name}\"))?;\n\
                 ::core::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                let helper = if f.skip || f.default {
                    "__field_default"
                } else {
                    "__field"
                };
                s.push_str(&format!("{0}: ::serde::{helper}(m, \"{0}\")?,\n", f.name));
            }
            s.push_str("})");
            s
        }
        Shape::Tuple(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Shape::Tuple(n) => {
            let mut s = format!(
                "let a = v.as_array().ok_or_else(|| ::serde::Error::custom(\
                 \"expected array for {name}\"))?;\n\
                 if a.len() != {n} {{ return ::core::result::Result::Err(\
                 ::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n\
                 ::core::result::Result::Ok({name}(\n"
            );
            for i in 0..*n {
                s.push_str(&format!("::serde::Deserialize::deserialize(&a[{i}])?,\n"));
            }
            s.push_str("))");
            s
        }
        Shape::Unit => format!("::core::result::Result::Ok({name})"),
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => arms.push_str(&format!(
                "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
            )),
            Shape::Tuple(1) => arms.push_str(&format!(
                "{name}::{vn}(x0) => {{\n\
                 let mut m = ::serde::Map::new();\n\
                 m.insert(\"{vn}\", ::serde::Serialize::serialize(x0));\n\
                 ::serde::Value::Object(m)\n}}\n"
            )),
            Shape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn}({}) => {{\n\
                     let mut m = ::serde::Map::new();\n\
                     m.insert(\"{vn}\", ::serde::Value::Array(vec![{}]));\n\
                     ::serde::Value::Object(m)\n}}\n",
                    binds.join(", "),
                    items.join(", ")
                ));
            }
            Shape::Named(fields) => {
                let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                for f in fields.iter().filter(|f| !f.skip) {
                    inner.push_str(&format!(
                        "fm.insert(\"{0}\", ::serde::Serialize::serialize({0}));\n",
                        f.name
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vn} {{ {} }} => {{\n{inner}\
                     let mut m = ::serde::Map::new();\n\
                     m.insert(\"{vn}\", ::serde::Value::Object(fm));\n\
                     ::serde::Value::Object(m)\n}}\n",
                    binds.join(", ")
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut str_arms = String::new();
    let mut obj_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => str_arms.push_str(&format!(
                "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
            )),
            Shape::Tuple(1) => obj_arms.push_str(&format!(
                "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                 ::serde::Deserialize::deserialize(inner)?)),\n"
            )),
            Shape::Tuple(n) => {
                let mut s = format!(
                    "\"{vn}\" => {{\n\
                     let a = inner.as_array().ok_or_else(|| ::serde::Error::custom(\
                     \"expected array for {name}::{vn}\"))?;\n\
                     if a.len() != {n} {{ return ::core::result::Result::Err(\
                     ::serde::Error::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                     ::core::result::Result::Ok({name}::{vn}(\n"
                );
                for i in 0..*n {
                    s.push_str(&format!("::serde::Deserialize::deserialize(&a[{i}])?,\n"));
                }
                s.push_str("))\n}\n");
                obj_arms.push_str(&s);
            }
            Shape::Named(fields) => {
                let mut s = format!(
                    "\"{vn}\" => {{\n\
                     let fm = inner.as_object().ok_or_else(|| ::serde::Error::custom(\
                     \"expected object for {name}::{vn}\"))?;\n\
                     ::core::result::Result::Ok({name}::{vn} {{\n"
                );
                for f in fields {
                    let helper = if f.skip || f.default {
                        "__field_default"
                    } else {
                        "__field"
                    };
                    s.push_str(&format!("{0}: ::serde::{helper}(fm, \"{0}\")?,\n", f.name));
                }
                s.push_str("})\n}\n");
                obj_arms.push_str(&s);
            }
        }
    }
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         match v {{\n\
         ::serde::Value::Str(s) => match s.as_str() {{\n{str_arms}\
         other => ::core::result::Result::Err(::serde::Error::custom(format!(\
         \"unknown {name} variant `{{other}}`\"))),\n}},\n\
         ::serde::Value::Object(m) => {{\n\
         let mut it = m.iter();\n\
         let (tag, inner) = it.next().ok_or_else(|| ::serde::Error::custom(\
         \"empty object for {name}\"))?;\n\
         match tag.as_str() {{\n{obj_arms}\
         other => ::core::result::Result::Err(::serde::Error::custom(format!(\
         \"unknown {name} variant `{{other}}`\"))),\n}}\n}},\n\
         other => ::core::result::Result::Err(::serde::Error::custom(format!(\
         \"expected {name}, found {{}}\", other.kind()))),\n}}\n}}\n}}\n"
    )
}
