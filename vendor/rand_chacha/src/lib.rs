//! Offline stand-in for `rand_chacha`.
//!
//! Exposes seedable generators under the `ChaCha8Rng`/`ChaCha12Rng`/
//! `ChaCha20Rng` names the workspace imports. The underlying generator is
//! the vendored `rand` shim's xoshiro256++ (deterministic per seed); the
//! workspace depends on reproducibility, never on matching the real ChaCha
//! keystream.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

macro_rules! chacha_alias {
    ($($name:ident),*) => {$(
        /// Deterministic seedable generator (shim; not real ChaCha output).
        #[derive(Debug, Clone)]
        pub struct $name {
            inner: StdRng,
        }

        impl $name {
            /// The raw generator state, for checkpointing (see
            /// [`StdRng::state`]).
            pub fn state(&self) -> [u64; 4] {
                self.inner.state()
            }

            /// Rebuilds a generator from a [`state`](Self::state) snapshot,
            /// continuing the stream exactly where it left off.
            pub fn from_state(s: [u64; 4]) -> Self {
                Self {
                    inner: StdRng::from_state(s),
                }
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.inner.next_u64()
            }
        }

        impl SeedableRng for $name {
            fn seed_from_u64(state: u64) -> Self {
                Self {
                    inner: StdRng::seed_from_u64(state),
                }
            }
        }
    )*};
}

chacha_alias!(ChaCha8Rng, ChaCha12Rng, ChaCha20Rng);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let x: f32 = a.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
