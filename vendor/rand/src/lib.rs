//! Offline stand-in for the `rand` crate (0.8 surface).
//!
//! The build environment cannot reach crates-io, so this shim provides the
//! parts of `rand` the workspace uses: [`RngCore`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`], and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but do
//! *not* match the real crate's output bit-for-bit — the workspace only
//! relies on determinism and reasonable uniformity, never on the exact
//! sequence.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A random value from the "standard" distribution of `T`
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform random value in `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    /// Fills a byte slice (convenience mirror of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform range sampling ([`Rng::gen_range`]).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}
impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Range argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws a uniform value from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }
    }
}

/// Default generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast deterministic generator (xoshiro256++ seeded via
    /// splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing. Restoring it via
        /// [`from_state`](Self::from_state) continues the stream exactly
        /// where this generator left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`state`](Self::state) snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }

        pub(crate) fn from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next_sm = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next_sm(), next_sm(), next_sm(), next_sm()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_u64(state)
        }
    }
}

/// Everything most callers need.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
            let z: u8 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&z));
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
